package memcloud

import (
	"fmt"
	"sync"

	"stwig/internal/graph"
)

// Dynamic updates. Table 1 lists the STwig approach's update cost as O(1):
// because the only index is the per-machine string index, adding a vertex
// touches one posting list, and adding an edge touches two adjacency cells
// — no structural index to rebuild. This file implements that claim.
//
// Storage follows the log-structured discipline of a memory trunk: growing
// a cell's adjacency appends a fresh copy at the arena tail and retargets
// the directory entry; the superseded region becomes garbage that
// CompactAll reclaims. Removals shrink in place.
//
// Concurrency: updates take the cluster's writer lock; the query read path
// stays lock-free by design, so updates MUST NOT run concurrently with
// queries (single-writer, quiesced-reader — the usual discipline for
// epoch-style in-memory stores; a production system would wrap this in
// epochs or shard locks). The upd.mu below serializes writers only;
// stwigd's per-namespace reader gate (internal/server) is what quiesces
// readers around each writer window.

// UpdateStats counts applied mutations and storage garbage.
type UpdateStats struct {
	NodesAdded   uint64
	EdgesAdded   uint64
	EdgesRemoved uint64
	// GarbageWords is the arena space superseded by cell relocations and
	// reclaimable by CompactAll.
	GarbageWords int64
}

var errNotLoaded = fmt.Errorf("memcloud: cluster not loaded")

// checkVertexLocked rejects vertex IDs outside [0, nextID) BEFORE they
// reach a Partitioner: table-backed partitioners (BFS, range) index owner
// arrays by ID, so an unchecked out-of-range ID from the network would
// panic instead of erroring. Caller holds upd.mu.
func (c *Cluster) checkVertexLocked(v graph.NodeID) error {
	if v < 0 || v >= c.upd.nextID {
		return fmt.Errorf("memcloud: vertex %d does not exist", v)
	}
	return nil
}

type updateState struct {
	mu     sync.Mutex
	nextID graph.NodeID
	stats  UpdateStats
}

// AddNode inserts a new vertex with the given label and returns its ID.
// The label may be new; it is interned into the cluster's label table.
func (c *Cluster) AddNode(label string) (graph.NodeID, error) {
	if !c.loaded {
		return graph.InvalidNode, errNotLoaded
	}
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	return c.addNodeLocked(label)
}

func (c *Cluster) addNodeLocked(label string) (graph.NodeID, error) {
	id := c.upd.nextID
	c.upd.nextID++
	l := c.labels.Intern(label)
	m := c.machines[c.part.Owner(id)]
	m.store.put(id, l, nil)
	m.index.insertSorted(id, l)
	c.upd.stats.NodesAdded++
	c.epoch.Add(1)
	return id, nil
}

// AddEdge inserts an undirected edge between existing vertices u and v,
// updating both adjacency cells and the cross-label-pair table. Duplicate
// edges and self-loops are rejected.
func (c *Cluster) AddEdge(u, v graph.NodeID) error {
	if !c.loaded {
		return errNotLoaded
	}
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	return c.addEdgeLocked(u, v)
}

func (c *Cluster) addEdgeLocked(u, v graph.NodeID) error {
	if u == v {
		return fmt.Errorf("memcloud: self-loop (%d,%d)", u, v)
	}
	if err := c.checkVertexLocked(u); err != nil {
		return err
	}
	if err := c.checkVertexLocked(v); err != nil {
		return err
	}
	mu := c.machines[c.part.Owner(u)]
	mv := c.machines[c.part.Owner(v)]
	lu, ok := mu.store.labelOf(u)
	if !ok {
		return fmt.Errorf("memcloud: vertex %d does not exist", u)
	}
	lv, ok := mv.store.labelOf(v)
	if !ok {
		return fmt.Errorf("memcloud: vertex %d does not exist", v)
	}
	if has, _ := mu.store.hasNeighbor(u, v); has {
		return fmt.Errorf("memcloud: edge (%d,%d) already exists", u, v)
	}
	c.upd.stats.GarbageWords += mu.store.insertNeighbor(u, v)
	c.upd.stats.GarbageWords += mv.store.insertNeighbor(v, u)
	// Cross-pair maintenance is additive-only: removing the last edge of a
	// label pair leaves a stale bit, which only ever makes load sets larger
	// (correctness preserved, communication slightly pessimistic).
	c.cross.add(mu.id, mv.id, lu, lv)
	c.cross.add(mv.id, mu.id, lv, lu)
	c.upd.stats.EdgesAdded++
	c.epoch.Add(1)
	return nil
}

// RemoveEdge deletes the undirected edge (u, v).
func (c *Cluster) RemoveEdge(u, v graph.NodeID) error {
	if !c.loaded {
		return errNotLoaded
	}
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	return c.removeEdgeLocked(u, v)
}

func (c *Cluster) removeEdgeLocked(u, v graph.NodeID) error {
	if err := c.checkVertexLocked(u); err != nil {
		return err
	}
	if err := c.checkVertexLocked(v); err != nil {
		return err
	}
	mu := c.machines[c.part.Owner(u)]
	mv := c.machines[c.part.Owner(v)]
	has, ok := mu.store.hasNeighbor(u, v)
	if !ok {
		return fmt.Errorf("memcloud: vertex %d does not exist", u)
	}
	if !has {
		return fmt.Errorf("memcloud: edge (%d,%d) does not exist", u, v)
	}
	mu.store.removeNeighbor(u, v)
	mv.store.removeNeighbor(v, u)
	c.upd.stats.EdgesRemoved++
	c.epoch.Add(1)
	return nil
}

// MutationOp selects the kind of one batched Mutation.
type MutationOp uint8

const (
	MutAddNode MutationOp = iota
	MutAddEdge
	MutRemoveEdge
)

func (op MutationOp) String() string {
	switch op {
	case MutAddNode:
		return "add_node"
	case MutAddEdge:
		return "add_edge"
	case MutRemoveEdge:
		return "remove_edge"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation is one dynamic update in batch form: AddNode carries Label,
// AddEdge and RemoveEdge carry U and V.
type Mutation struct {
	Op    MutationOp
	Label string
	U, V  graph.NodeID
}

// MutationResult reports one batched mutation's outcome. NodeID is set for
// successful AddNode mutations (InvalidNode otherwise); Epoch is the
// cluster's mutation epoch observed right after this mutation; Err carries
// per-mutation failures (missing vertex, duplicate edge, ...) without
// aborting the rest of the batch.
type MutationResult struct {
	NodeID graph.NodeID
	Epoch  uint64
	Err    error
}

// ApplyBatch applies muts in order under a single writer-lock acquisition —
// the amortization a batching dispatcher (stwigd's update pipeline) exists
// for: one lock round trip and one quiesced-reader window per batch instead
// of per mutation. Each mutation succeeds or fails individually; a conflict
// does not abort its successors. The same single-writer / quiesced-reader
// discipline as the one-shot methods applies to the batch as a whole.
func (c *Cluster) ApplyBatch(muts []Mutation) []MutationResult {
	out := make([]MutationResult, len(muts))
	if !c.loaded {
		for i := range out {
			out[i] = MutationResult{NodeID: graph.InvalidNode, Err: errNotLoaded}
		}
		return out
	}
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	for i, m := range muts {
		r := MutationResult{NodeID: graph.InvalidNode}
		switch m.Op {
		case MutAddNode:
			r.NodeID, r.Err = c.addNodeLocked(m.Label)
		case MutAddEdge:
			r.Err = c.addEdgeLocked(m.U, m.V)
		case MutRemoveEdge:
			r.Err = c.removeEdgeLocked(m.U, m.V)
		default:
			r.Err = fmt.Errorf("memcloud: unknown mutation op %d", m.Op)
		}
		r.Epoch = c.epoch.Load()
		out[i] = r
	}
	return out
}

// UpdateStats snapshots the mutation counters.
func (c *Cluster) UpdateStats() UpdateStats {
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	return c.upd.stats
}

// CompactAll rewrites every machine's arena to drop garbage left by cell
// relocations, returning the number of words reclaimed.
func (c *Cluster) CompactAll() int64 {
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	var reclaimed int64
	for _, m := range c.machines {
		reclaimed += m.store.compact()
	}
	c.upd.stats.GarbageWords = 0
	return reclaimed
}

// --- store-level mutation primitives ---

// hasNeighbor reports whether id's adjacency contains nb; ok is false when
// id is not stored here.
func (s *Store) hasNeighbor(id, nb graph.NodeID) (has, ok bool) {
	cell, found := s.load(id)
	if !found {
		return false, false
	}
	for _, x := range cell.Neighbors {
		if x == nb {
			return true, true
		}
	}
	return false, true
}

// insertNeighbor adds nb to id's sorted adjacency, relocating the cell to
// the arena tail. Returns the number of words turned into garbage.
func (s *Store) insertNeighbor(id, nb graph.NodeID) int64 {
	ref := s.dir[id]
	old := s.arena[ref.off : ref.off+int64(ref.deg)]
	newOff := int64(len(s.arena))
	// Copy with sorted insertion.
	inserted := false
	for _, x := range old {
		if !inserted && nb < x {
			s.arena = append(s.arena, nb)
			inserted = true
		}
		s.arena = append(s.arena, x)
	}
	if !inserted {
		s.arena = append(s.arena, nb)
	}
	s.dir[id] = cellRef{off: newOff, deg: ref.deg + 1, label: ref.label}
	return int64(ref.deg)
}

// removeNeighbor deletes nb from id's adjacency in place (shrinking the
// cell without relocation).
func (s *Store) removeNeighbor(id, nb graph.NodeID) {
	ref := s.dir[id]
	adj := s.arena[ref.off : ref.off+int64(ref.deg)]
	w := 0
	for _, x := range adj {
		if x != nb {
			adj[w] = x
			w++
		}
	}
	s.dir[id] = cellRef{off: ref.off, deg: int32(w), label: ref.label}
}

// compact rewrites the arena with only live cells, in directory order,
// returning reclaimed words.
func (s *Store) compact() int64 {
	before := int64(len(s.arena))
	newArena := make([]graph.NodeID, 0, len(s.arena))
	for id, ref := range s.dir {
		off := int64(len(newArena))
		newArena = append(newArena, s.arena[ref.off:ref.off+int64(ref.deg)]...)
		s.dir[id] = cellRef{off: off, deg: ref.deg, label: ref.label}
	}
	s.arena = newArena
	return before - int64(len(newArena))
}

// insertSorted adds id into the label's posting list keeping it sorted.
func (ix *StringIndex) insertSorted(id graph.NodeID, label graph.LabelID) {
	ids := ix.byLabel[label]
	pos := len(ids)
	for i, x := range ids {
		if x >= id {
			pos = i
			break
		}
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	ix.byLabel[label] = ids
}
