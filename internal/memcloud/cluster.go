package memcloud

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stwig/internal/graph"
)

// MaxMachines bounds the simulated cluster size; cross-label-pair machine
// sets are stored as single-word bitmasks. The paper's clusters have 8 and
// 12 machines.
const MaxMachines = 64

// Config describes a simulated cluster.
type Config struct {
	// Machines is the cluster size, in [1, MaxMachines].
	Machines int
	// Partitioner overrides the default HashPartitioner.
	Partitioner Partitioner
	// RemoteLatency, if nonzero, is slept once per remote batch message to
	// emulate a network round trip. Off by default so unit tests stay fast;
	// the speed-up experiments can enable it to make communication cost
	// visible in wall-clock time.
	RemoteLatency time.Duration
}

func (cfg Config) validate() error {
	if cfg.Machines < 1 || cfg.Machines > MaxMachines {
		return fmt.Errorf("memcloud: machine count %d out of range [1,%d]", cfg.Machines, MaxMachines)
	}
	if cfg.Partitioner != nil && cfg.Partitioner.Machines() != cfg.Machines {
		return fmt.Errorf("memcloud: partitioner covers %d machines, cluster has %d",
			cfg.Partitioner.Machines(), cfg.Machines)
	}
	return nil
}

// Cluster is a simulated Trinity memory cloud: a set of machines plus the
// message fabric between them. A Cluster is safe for concurrent use once
// LoadGraph has returned.
type Cluster struct {
	cfg      Config
	part     Partitioner
	machines []*Machine
	labels   *graph.LabelTable
	net      netCounters
	cross    *crossPairs
	loaded   bool
	upd      updateState
	epoch    atomic.Uint64
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner{K: cfg.Machines}
	}
	c := &Cluster{cfg: cfg, part: part}
	c.machines = make([]*Machine, cfg.Machines)
	for i := range c.machines {
		c.machines[i] = &Machine{id: i, cluster: c}
	}
	return c, nil
}

// MustNewCluster is NewCluster that panics on error.
func MustNewCluster(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// LoadGraph partitions g across the machines, builds each machine's slab
// store and string index, and runs the cross-label-pair preprocessing of
// §5.3. Its duration is what Table 2 reports.
func (c *Cluster) LoadGraph(g *graph.Graph) error {
	if c.loaded {
		return fmt.Errorf("memcloud: cluster already loaded")
	}
	n := g.NumNodes()
	k := c.cfg.Machines
	perMachine := n/int64(k) + 1

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		m := c.machines[i]
		m.store = newStore(perMachine)
		m.index = newStringIndex()
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			for v := int64(0); v < n; v++ {
				id := graph.NodeID(v)
				if c.part.Owner(id) != m.id {
					continue
				}
				label := g.Label(id)
				m.store.put(id, label, g.Neighbors(id))
				m.index.add(id, label)
			}
			m.index.finalize()
		}(m)
	}
	wg.Wait()

	// Cross-label-pair preprocessing: for each edge (u,v), associate the
	// label pair (T(u),T(v)) with the machine pair (owner(u),owner(v)).
	cross := newCrossPairs(k)
	for v := int64(0); v < n; v++ {
		u := graph.NodeID(v)
		i := c.part.Owner(u)
		lu := g.Label(u)
		for _, w := range g.Neighbors(u) {
			j := c.part.Owner(w)
			cross.add(i, j, lu, g.Label(w))
		}
	}
	c.cross = cross
	c.labels = g.Labels()
	c.loaded = true
	c.upd.nextID = graph.NodeID(n)
	return nil
}

// NumMachines returns the cluster size.
func (c *Cluster) NumMachines() int { return c.cfg.Machines }

// Epoch returns the cluster's mutation epoch: it increases whenever a
// dynamic update (AddNode, AddEdge, RemoveEdge) changes the statistics a
// query plan is derived from — label frequencies, the label table, or the
// cross-label-pair tables. Cached plans record the epoch they were built at
// and are invalidated when it moves.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// NumNodes returns the total vertex count across machines, including
// vertices added after load. Vertex IDs are dense in [0, NumNodes()).
func (c *Cluster) NumNodes() int64 {
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	return int64(c.upd.nextID)
}

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }

// Owner returns the machine index owning vertex v.
func (c *Cluster) Owner(v graph.NodeID) int { return c.part.Owner(v) }

// Labels returns the label table of the loaded graph, or nil before load.
func (c *Cluster) Labels() *graph.LabelTable { return c.labels }

// NetStats snapshots the communication counters.
func (c *Cluster) NetStats() NetStats { return c.net.snapshot() }

// ResetNetStats zeroes the communication counters; experiments call this
// between phases.
func (c *Cluster) ResetNetStats() { c.net.reset() }

// CrossMask returns the bitmask of machines j such that the data graph
// contains an edge from a vertex labeled la on machine i to a vertex labeled
// lb on machine j. This is the stored label-pair information §5.3 uses to
// build a query-specific cluster graph without touching the data graph.
func (c *Cluster) CrossMask(i int, la, lb graph.LabelID) uint64 {
	return c.cross.mask(i, la, lb)
}

// TotalMemoryBytes estimates resident bytes across machines (stores plus
// string indexes). Reported in the Table 1 reproduction. It takes the
// update lock: the walk iterates directory and posting-list maps that
// dynamic updates mutate, and observability callers (Engine.Snapshot, the
// daemon's GET /stats) run concurrently with updates.
func (c *Cluster) TotalMemoryBytes() int64 {
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	var total int64
	for _, m := range c.machines {
		total += m.store.memoryBytes() + m.index.memoryBytes()
	}
	return total
}

// StringIndexBytes estimates the total size of all machines' string
// indexes, the only index the system builds. Like TotalMemoryBytes, it
// locks out concurrent updates.
func (c *Cluster) StringIndexBytes() int64 {
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	var total int64
	for _, m := range c.machines {
		total += m.index.memoryBytes()
	}
	return total
}

// ParallelEach runs fn concurrently for every machine and waits for all to
// finish. It is the execution primitive for the paper's "each machine
// performs Algorithm 1 ... in parallel".
func (c *Cluster) ParallelEach(fn func(m *Machine)) {
	var wg sync.WaitGroup
	for _, m := range c.machines {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}

// accountRemote charges one message of the given payload words and applies
// the configured latency.
func (c *Cluster) accountRemote(words int) {
	c.net.account(1, payloadSize(words))
	if c.cfg.RemoteLatency > 0 {
		time.Sleep(c.cfg.RemoteLatency)
	}
}

// Load is the paper's Cloud.Load(id) as issued from machine `from`: it
// locates the vertex wherever it lives and returns its cell. Remote loads
// ship the neighbor list and are accounted.
func (c *Cluster) Load(from int, id graph.NodeID) (Cell, bool) {
	owner := c.part.Owner(id)
	cell, ok := c.machines[owner].store.load(id)
	if !ok {
		return Cell{}, false
	}
	if owner != from {
		// Ship a copy: remote cells must not alias another machine's arena.
		shipped := Cell{ID: cell.ID, Label: cell.Label, Neighbors: append([]graph.NodeID(nil), cell.Neighbors...)}
		c.accountRemote(2 + len(cell.Neighbors))
		return shipped, true
	}
	return cell, true
}

// HasLabel is the paper's Index.hasLabel(id, label) as issued from machine
// `from`. Checking a remote vertex costs one round trip ("when checking the
// label of a child node ... we may incur network communication", §4.3).
func (c *Cluster) HasLabel(from int, id graph.NodeID, label graph.LabelID) bool {
	owner := c.part.Owner(id)
	l, ok := c.machines[owner].store.labelOf(id)
	if owner != from {
		c.accountRemote(2)
	}
	return ok && l == label
}

// LabelsOfBatch resolves the labels of a batch of vertex IDs as issued from
// machine `from`, grouping remote lookups into one message per owner
// machine. This models Trinity's message merging / batch transmission
// (§2.2) and is what the matcher uses on hot paths.
func (c *Cluster) LabelsOfBatch(from int, ids []graph.NodeID, out []graph.LabelID) []graph.LabelID {
	out = out[:0]
	// One pass: count per-owner traffic, resolve labels directly (the
	// simulation can read any machine's store; accounting preserves the
	// cost structure of doing it with real messages).
	// One word per remote ID: the request direction carries the 8-byte
	// vertex ID and the (smaller) label response rides the full-duplex
	// return path.
	remoteWords := make(map[int]int)
	for _, id := range ids {
		owner := c.part.Owner(id)
		l, ok := c.machines[owner].store.labelOf(id)
		if !ok {
			l = graph.NoLabel
		}
		out = append(out, l)
		if owner != from {
			remoteWords[owner]++
		}
	}
	for _, words := range remoteWords {
		c.accountRemote(words)
	}
	return out
}

// ShipWords accounts an application-level transfer of the given number of
// 8-byte words from machine `from` to machine `to` (used by the join phase
// when machines exchange STwig results). No-op when from == to.
func (c *Cluster) ShipWords(from, to, words int) {
	if from == to {
		return
	}
	c.accountRemote(words)
}

// AccountProxyTransfer accounts one message of the given payload words
// between a machine and the query proxy (which is not itself a cluster
// machine). The exploration phase uses it for binding synchronization.
func (c *Cluster) AccountProxyTransfer(words int) {
	c.accountRemote(words)
}

// GlobalLabelCount sums Index.Count over machines: the number of vertices
// in the whole graph carrying the label. Used by f-value computation
// (§5.2); in a real deployment this per-label count is a byproduct of index
// construction, so no communication is charged.
func (c *Cluster) GlobalLabelCount(label graph.LabelID) int64 {
	var total int64
	for _, m := range c.machines {
		total += int64(m.index.Count(label))
	}
	return total
}
