package memcloud

import (
	"testing"
	"time"
)

func TestNetworkModelTransferTime(t *testing.T) {
	m := NetworkModel{LatencyPerMessage: time.Microsecond, BytesPerSecond: 1_000_000}
	// 10 messages, 1MB, 1 machine: 10µs + 1s.
	got := m.TransferTime(NetStats{Messages: 10, Bytes: 1_000_000}, 1)
	want := 10*time.Microsecond + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// Same traffic over 4 machines moves in parallel: quarter the time.
	got4 := m.TransferTime(NetStats{Messages: 10, Bytes: 1_000_000}, 4)
	if got4 >= got {
		t.Fatalf("4-machine transfer %v not faster than 1-machine %v", got4, got)
	}
	if got4 < got/5 {
		t.Fatalf("4-machine transfer %v implausibly fast vs %v", got4, got)
	}
}

func TestNetworkModelZeroIsFree(t *testing.T) {
	var m NetworkModel
	if m.TransferTime(NetStats{Messages: 100, Bytes: 1 << 30}, 1) != 0 {
		t.Fatal("zero model charged time")
	}
}

func TestNetworkModelClampsMachines(t *testing.T) {
	m := DefaultNetworkModel()
	if m.TransferTime(NetStats{Messages: 10, Bytes: 1000}, 0) == 0 {
		t.Fatal("machines=0 produced zero transfer time")
	}
}

func TestDefaultNetworkModelIsGigE(t *testing.T) {
	m := DefaultNetworkModel()
	// 125 MB at 1 GigE ≈ 1 second.
	d := m.TransferTime(NetStats{Bytes: 125_000_000}, 1)
	if d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("125MB transfer modeled as %v, want ≈1s", d)
	}
}
