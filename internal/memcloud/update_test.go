package memcloud

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stwig/internal/graph"
)

func updatableCluster(t *testing.T) (*Cluster, *graph.Graph) {
	t.Helper()
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	return c, g
}

func TestUpdatesRequireLoadedCluster(t *testing.T) {
	c := MustNewCluster(Config{Machines: 2})
	if _, err := c.AddNode("x"); err == nil {
		t.Fatal("AddNode on unloaded cluster accepted")
	}
	if err := c.AddEdge(0, 1); err == nil {
		t.Fatal("AddEdge on unloaded cluster accepted")
	}
	if err := c.RemoveEdge(0, 1); err == nil {
		t.Fatal("RemoveEdge on unloaded cluster accepted")
	}
}

// TestApplyBatchMatchesOneShotMethods pins the batch entry point: one
// ApplyBatch must be observationally identical to the equivalent sequence
// of AddNode/AddEdge/RemoveEdge calls — same IDs, same per-mutation
// conflicts (which must not abort their successors), same epoch movement.
func TestApplyBatchMatchesOneShotMethods(t *testing.T) {
	c, g := updatableCluster(t)
	n := graph.NodeID(g.NumNodes())
	epoch0 := c.Epoch()

	results := c.ApplyBatch([]Mutation{
		{Op: MutAddNode, Label: "batchy"},
		{Op: MutAddNode, Label: "batchy"},
		{Op: MutAddEdge, U: n, V: n + 1},
		{Op: MutAddEdge, U: n, V: n + 1},    // duplicate: individual conflict
		{Op: MutRemoveEdge, U: n + 1, V: n}, // symmetric removal works
		{Op: MutAddEdge, U: 10_000, V: n},   // missing vertex: conflict
		{Op: MutAddEdge, U: n, V: n + 1},    // re-add after removal succeeds
		{Op: MutationOp(250)},               // unknown op: conflict, not a panic
	})
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].NodeID != n {
		t.Fatalf("batch add_node #1 = %+v, want node %d", results[0], n)
	}
	if results[1].Err != nil || results[1].NodeID != n+1 {
		t.Fatalf("batch add_node #2 = %+v, want node %d", results[1], n+1)
	}
	for i, wantErr := range []bool{false, false, false, true, false, true, false, true} {
		if (results[i].Err != nil) != wantErr {
			t.Fatalf("mutation %d: err = %v, want error=%v", i, results[i].Err, wantErr)
		}
	}
	// Epochs are per-mutation and monotone within the batch; conflicts do
	// not advance them.
	if results[0].Epoch != epoch0+1 || results[1].Epoch != epoch0+2 {
		t.Fatalf("epochs = %d, %d, want %d, %d", results[0].Epoch, results[1].Epoch, epoch0+1, epoch0+2)
	}
	if results[3].Epoch != results[2].Epoch {
		t.Fatalf("conflicting mutation advanced the epoch: %d → %d", results[2].Epoch, results[3].Epoch)
	}
	if c.Epoch() != epoch0+5 { // 2 adds + edge + remove + re-add
		t.Fatalf("final epoch = %d, want %d", c.Epoch(), epoch0+5)
	}
	// Net effect: the edge exists (re-added), both sides visible.
	cellU, _ := c.Load(0, n)
	cellV, _ := c.Load(0, n+1)
	if !containsNode(cellU.Neighbors, n+1) || !containsNode(cellV.Neighbors, n) {
		t.Fatalf("batched edge not visible: %v / %v", cellU.Neighbors, cellV.Neighbors)
	}
	st := c.UpdateStats()
	if st.NodesAdded != 2 || st.EdgesAdded != 2 || st.EdgesRemoved != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// An unloaded cluster fails every mutation without touching anything.
	empty := MustNewCluster(Config{Machines: 2})
	for i, r := range empty.ApplyBatch([]Mutation{{Op: MutAddNode, Label: "x"}, {Op: MutAddEdge, U: 0, V: 1}}) {
		if r.Err == nil {
			t.Fatalf("mutation %d on unloaded cluster accepted", i)
		}
	}
}

func TestAddNodeAssignsFreshIDs(t *testing.T) {
	c, g := updatableCluster(t)
	id1, err := c.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.AddNode("newlabel")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != graph.NodeID(g.NumNodes()) || id2 != id1+1 {
		t.Fatalf("ids = %d, %d; want %d, %d", id1, id2, g.NumNodes(), g.NumNodes()+1)
	}
	// The new vertex is loadable and indexed on its owner machine.
	cell, ok := c.Load(0, id2)
	if !ok {
		t.Fatal("new vertex not loadable")
	}
	if c.Labels().Name(cell.Label) != "newlabel" {
		t.Fatalf("label = %q", c.Labels().Name(cell.Label))
	}
	owner := c.Machine(c.Owner(id2))
	found := false
	for _, x := range owner.LocalIDs(cell.Label) {
		if x == id2 {
			found = true
		}
	}
	if !found {
		t.Fatal("new vertex missing from owner string index")
	}
	if got := c.UpdateStats().NodesAdded; got != 2 {
		t.Fatalf("NodesAdded = %d", got)
	}
}

func TestAddEdgeVisibleBothSides(t *testing.T) {
	c, _ := updatableCluster(t)
	// testGraph has no edge (0,4).
	if err := c.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	cell0, _ := c.Load(0, 0)
	cell4, _ := c.Load(0, 4)
	if !containsNode(cell0.Neighbors, 4) || !containsNode(cell4.Neighbors, 0) {
		t.Fatalf("edge not visible: %v / %v", cell0.Neighbors, cell4.Neighbors)
	}
	// Adjacency stays sorted after insertion.
	for i := 1; i < len(cell0.Neighbors); i++ {
		if cell0.Neighbors[i-1] >= cell0.Neighbors[i] {
			t.Fatalf("adjacency unsorted after insert: %v", cell0.Neighbors)
		}
	}
}

func TestAddEdgeRejections(t *testing.T) {
	c, _ := updatableCluster(t)
	if err := c.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := c.AddEdge(0, 9999); err == nil {
		t.Fatal("edge to missing vertex accepted")
	}
	if err := c.AddEdge(9999, 0); err == nil {
		t.Fatal("edge from missing vertex accepted")
	}
	if err := c.AddEdge(0, 1); err == nil { // exists in testGraph
		t.Fatal("duplicate edge accepted")
	}
}

// TestEdgeUpdatesRejectOutOfRangeIDsOnTablePartitioners pins the ID
// validation that must run BEFORE any Partitioner sees the vertex:
// BFS/range partitioners index owner tables by ID, so an unchecked
// negative or beyond-range ID from the network panicked here instead of
// erroring. Exercised through both the one-shot methods and ApplyBatch.
func TestEdgeUpdatesRejectOutOfRangeIDsOnTablePartitioners(t *testing.T) {
	g := testGraph(t)
	c := MustNewCluster(Config{Machines: 2, Partitioner: NewBFSPartitioner(g, 2)})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]graph.NodeID{{-1, 0}, {0, -1}, {1 << 40, 0}, {0, graph.NodeID(g.NumNodes())}} {
		if err := c.AddEdge(e[0], e[1]); err == nil {
			t.Fatalf("AddEdge(%d,%d) accepted an out-of-range vertex", e[0], e[1])
		}
		if err := c.RemoveEdge(e[0], e[1]); err == nil {
			t.Fatalf("RemoveEdge(%d,%d) accepted an out-of-range vertex", e[0], e[1])
		}
	}
	results := c.ApplyBatch([]Mutation{
		{Op: MutAddEdge, U: -1, V: 0},
		{Op: MutAddNode, Label: "survivor"}, // successors still apply
	})
	if results[0].Err == nil {
		t.Fatal("batched out-of-range edge accepted")
	}
	if results[1].Err != nil {
		t.Fatalf("mutation after rejected ID failed: %v", results[1].Err)
	}
}

func TestAddEdgeUpdatesCrossPairs(t *testing.T) {
	c, g := updatableCluster(t)
	// Nodes 0 (label a, machine 0) and 6 (label a, machine 3): no (a,a)
	// cross pair exists between machines 0 and 3 initially.
	la := g.Labels().MustLookup("a")
	if c.CrossMask(0, la, la)&(1<<3) != 0 {
		t.Skip("pair already present; test graph changed")
	}
	if err := c.AddEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	if c.CrossMask(0, la, la)&(1<<3) == 0 {
		t.Fatal("cross pair m0->m3 not recorded after AddEdge")
	}
	if c.CrossMask(3, la, la)&1 == 0 {
		t.Fatal("cross pair m3->m0 not recorded after AddEdge")
	}
}

func TestRemoveEdge(t *testing.T) {
	c, _ := updatableCluster(t)
	if err := c.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	cell0, _ := c.Load(0, 0)
	cell1, _ := c.Load(0, 1)
	if containsNode(cell0.Neighbors, 1) || containsNode(cell1.Neighbors, 0) {
		t.Fatal("edge still visible after removal")
	}
	if err := c.RemoveEdge(0, 1); err == nil {
		t.Fatal("double removal accepted")
	}
	if err := c.RemoveEdge(9999, 0); err == nil {
		t.Fatal("removal from missing vertex accepted")
	}
	if got := c.UpdateStats().EdgesRemoved; got != 1 {
		t.Fatalf("EdgesRemoved = %d", got)
	}
}

func TestCompactReclaimsGarbage(t *testing.T) {
	c, _ := updatableCluster(t)
	// Each insert relocates a cell, leaving its old extent as garbage.
	if err := c.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	garbage := c.UpdateStats().GarbageWords
	if garbage <= 0 {
		t.Fatalf("GarbageWords = %d, want > 0", garbage)
	}
	reclaimed := c.CompactAll()
	if reclaimed != garbage {
		t.Fatalf("reclaimed %d, want %d", reclaimed, garbage)
	}
	if c.UpdateStats().GarbageWords != 0 {
		t.Fatal("garbage counter not reset")
	}
	// All cells still intact after compaction.
	cell0, ok := c.Load(0, 0)
	if !ok || !containsNode(cell0.Neighbors, 4) || !containsNode(cell0.Neighbors, 6) {
		t.Fatalf("cell damaged by compaction: %v", cell0.Neighbors)
	}
	if c.CompactAll() != 0 {
		t.Fatal("second compaction reclaimed nonzero")
	}
}

func TestPropertyUpdatesMatchRebuiltGraph(t *testing.T) {
	// Applying random updates to a loaded cluster must leave it equivalent
	// to a cluster loaded from the equivalently mutated graph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		labels := []string{"a", "b", "c"}

		// Base graph.
		type edge struct{ u, v graph.NodeID }
		nodeLabels := make([]string, n)
		for i := range nodeLabels {
			nodeLabels[i] = labels[rng.Intn(3)]
		}
		edgeSet := map[edge]bool{}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			edgeSet[edge{u, v}] = true
		}
		build := func(extraLabels []string, extraEdges []edge, removed map[edge]bool) *graph.Graph {
			b := graph.NewBuilder(graph.Undirected())
			for _, l := range nodeLabels {
				b.AddNode(l)
			}
			for _, l := range extraLabels {
				b.AddNode(l)
			}
			for e := range edgeSet {
				if !removed[e] {
					b.MustAddEdge(e.u, e.v)
				}
			}
			for _, e := range extraEdges {
				b.MustAddEdge(e.u, e.v)
			}
			return b.Build()
		}

		k := 2 + rng.Intn(3)
		c := MustNewCluster(Config{Machines: k})
		if err := c.LoadGraph(build(nil, nil, nil)); err != nil {
			return false
		}

		// Random updates: add 3 nodes, add 5 edges, remove up to 3.
		var extraLabels []string
		var extraEdges []edge
		removed := map[edge]bool{}
		for i := 0; i < 3; i++ {
			l := labels[rng.Intn(3)]
			if _, err := c.AddNode(l); err != nil {
				return false
			}
			extraLabels = append(extraLabels, l)
		}
		total := graph.NodeID(n + 3)
		for i := 0; i < 5; i++ {
			u, v := graph.NodeID(rng.Intn(int(total))), graph.NodeID(rng.Intn(int(total)))
			if u == v {
				continue
			}
			if err := c.AddEdge(u, v); err != nil {
				continue // duplicate etc.
			}
			extraEdges = append(extraEdges, edge{u, v})
		}
		for e := range edgeSet {
			if len(removed) >= 3 {
				break
			}
			if err := c.RemoveEdge(e.u, e.v); err != nil {
				return false
			}
			removed[e] = true
		}
		if rng.Intn(2) == 0 {
			c.CompactAll()
		}

		// Compare against a freshly loaded equivalent graph.
		want := build(extraLabels, extraEdges, removed)
		for v := int64(0); v < want.NumNodes(); v++ {
			id := graph.NodeID(v)
			cell, ok := c.Load(0, id)
			if !ok {
				return false
			}
			if c.Labels().Name(cell.Label) != want.LabelString(id) {
				return false
			}
			wantN := want.Neighbors(id)
			if len(cell.Neighbors) != len(wantN) {
				return false
			}
			got := append([]graph.NodeID(nil), cell.Neighbors...)
			for i := range wantN {
				if got[i] != wantN[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func containsNode(ns []graph.NodeID, id graph.NodeID) bool {
	for _, x := range ns {
		if x == id {
			return true
		}
	}
	return false
}
