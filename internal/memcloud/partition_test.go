package memcloud

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stwig/internal/graph"
	"stwig/internal/rmat"
)

func TestBFSPartitionerBalance(t *testing.T) {
	g := rmat.MustGenerate(rmat.Params{Scale: 12, AvgDegree: 8, NumLabels: 4, Seed: 2})
	const k = 8
	p := NewBFSPartitioner(g, k)
	if p.Machines() != k {
		t.Fatalf("Machines = %d", p.Machines())
	}
	counts := make([]int64, k)
	for v := int64(0); v < g.NumNodes(); v++ {
		counts[p.Owner(graph.NodeID(v))]++
	}
	per := g.NumNodes() / k
	for i, c := range counts {
		if c < per/2 || c > 2*per {
			t.Fatalf("machine %d holds %d of %d vertices — unbalanced %v", i, c, g.NumNodes(), counts)
		}
	}
}

func TestBFSPartitionerImprovedLocality(t *testing.T) {
	// On a community-structured graph, BFS partitioning must cut far fewer
	// edges than hash partitioning.
	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	rng := rand.New(rand.NewSource(4))
	const comms = 64
	const size = 64
	for i := 0; i < comms*size; i++ {
		b.AddNode("x")
	}
	for c := 0; c < comms; c++ {
		base := int64(c * size)
		for i := 0; i < size*4; i++ {
			u, v := base+rng.Int63n(size), base+rng.Int63n(size)
			if u != v {
				b.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		next := int64(((c + 1) % comms) * size)
		b.MustAddEdge(graph.NodeID(base), graph.NodeID(next))
	}
	g := b.Build()

	cutEdges := func(p Partitioner) int64 {
		var cut int64
		for v := int64(0); v < g.NumNodes(); v++ {
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if graph.NodeID(v) < u && p.Owner(graph.NodeID(v)) != p.Owner(u) {
					cut++
				}
			}
		}
		return cut
	}
	const k = 8
	bfsCut := cutEdges(NewBFSPartitioner(g, k))
	hashCut := cutEdges(HashPartitioner{K: k})
	if bfsCut*4 > hashCut {
		t.Fatalf("BFS cut %d not far below hash cut %d", bfsCut, hashCut)
	}
}

func TestBFSPartitionerDynamicFallback(t *testing.T) {
	g := graph.MustFromEdges([]string{"a", "b"}, [][2]int64{{0, 1}}, graph.Undirected())
	p := NewBFSPartitioner(g, 4)
	// IDs beyond the build-time range still map into [0, k).
	for v := int64(2); v < 100; v++ {
		o := p.Owner(graph.NodeID(v))
		if o < 0 || o >= 4 {
			t.Fatalf("Owner(%d) = %d out of range", v, o)
		}
	}
}

func TestPropertyBFSPartitionerCoversAllMachinesOrFew(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
		for i := 0; i < n; i++ {
			b.AddNode("x")
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		k := 2 + rng.Intn(6)
		p := NewBFSPartitioner(g, k)
		// Every vertex assigned within range.
		for v := int64(0); v < g.NumNodes(); v++ {
			if o := p.Owner(graph.NodeID(v)); o < 0 || o >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterWithBFSPartitioner(t *testing.T) {
	g := rmat.MustGenerate(rmat.Params{Scale: 10, AvgDegree: 8, NumLabels: 4, Seed: 9})
	c, err := NewCluster(Config{Machines: 4, Partitioner: NewBFSPartitioner(g, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += c.Machine(i).NumLocalNodes()
	}
	if total != g.NumNodes() {
		t.Fatalf("partition total %d != %d", total, g.NumNodes())
	}
}
