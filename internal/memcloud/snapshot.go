package memcloud

import (
	"fmt"

	"stwig/internal/graph"
)

// Checkpoint support: a consistent snapshot of the cluster's live graph —
// everything dynamic updates have produced since load — rendered back into
// an immutable graph.Graph so it can be serialized with graph.WriteBinary
// and reloaded onto a fresh cluster at recovery. Together with the update
// journal (internal/journal) this is the LogBase-style durability story:
// checkpoint bounds replay, journal carries everything since.

// SnapshotGraph materializes the cluster's current graph: every vertex in
// [0, NumNodes()) with its live label and adjacency, as an undirected
// graph. It takes the update lock, so the snapshot is consistent with
// respect to concurrent mutations; readers are unaffected. Vertex IDs are
// preserved exactly (they are dense by construction), so a cluster loaded
// from the snapshot serves identical match sets.
func (c *Cluster) SnapshotGraph() (*graph.Graph, error) {
	if !c.loaded {
		return nil, errNotLoaded
	}
	c.upd.mu.Lock()
	defer c.upd.mu.Unlock()
	n := int64(c.upd.nextID)
	b := graph.NewBuilder(graph.Undirected())
	for v := int64(0); v < n; v++ {
		id := graph.NodeID(v)
		cell, ok := c.machines[c.part.Owner(id)].store.load(id)
		if !ok {
			return nil, fmt.Errorf("memcloud: snapshot: vertex %d missing from its owner's store", v)
		}
		b.AddNode(c.labels.Name(cell.Label))
	}
	for v := int64(0); v < n; v++ {
		id := graph.NodeID(v)
		cell, _ := c.machines[c.part.Owner(id)].store.load(id)
		for _, u := range cell.Neighbors {
			if id < u {
				if err := b.AddEdge(id, u); err != nil {
					return nil, fmt.Errorf("memcloud: snapshot: edge (%d,%d): %w", id, u, err)
				}
			}
		}
	}
	return b.Build(), nil
}

// RestoreEpoch seeds the cluster's mutation epoch, so that a recovered
// cluster (checkpoint load + journal replay) reports the same epoch the
// pre-crash cluster did — replaying k mutations over a checkpoint taken at
// epoch e lands on exactly e+k. It must be called before the cluster starts
// serving; once queries run, moving the epoch backwards would resurrect
// stale cached plans.
func (c *Cluster) RestoreEpoch(e uint64) { c.epoch.Store(e) }
