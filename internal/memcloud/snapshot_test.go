package memcloud

import (
	"testing"

	"stwig/internal/graph"
	"stwig/internal/rmat"
)

// TestSnapshotGraphRoundTrip: load → mutate → snapshot → reload must
// reproduce every vertex's label and adjacency, including vertices and
// edges created after load, with deletions applied.
func TestSnapshotGraphRoundTrip(t *testing.T) {
	g := rmat.MustGenerate(rmat.Params{Scale: 6, AvgDegree: 4, NumLabels: 3, Seed: 7})
	c := MustNewCluster(Config{Machines: 3})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}

	// Mutate through the batch path: fresh vertices, a stitch between
	// them, and a removal of a pre-existing edge.
	var target [2]graph.NodeID
	found := false
	for v := int64(0); v < g.NumNodes() && !found; v++ {
		if nbs := g.Neighbors(graph.NodeID(v)); len(nbs) > 0 {
			target = [2]graph.NodeID{graph.NodeID(v), nbs[0]}
			found = true
		}
	}
	if !found {
		t.Fatal("generated graph has no edges")
	}
	muts := []Mutation{
		{Op: MutAddNode, Label: "fresh-a"},
		{Op: MutAddNode, Label: "fresh-b"},
		{Op: MutAddEdge, U: graph.NodeID(g.NumNodes()), V: graph.NodeID(g.NumNodes() + 1)},
		{Op: MutRemoveEdge, U: target[0], V: target[1]},
	}
	for i, r := range c.ApplyBatch(muts) {
		if r.Err != nil {
			t.Fatalf("mutation %d: %v", i, r.Err)
		}
	}

	snap, err := c.SnapshotGraph()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes() != c.NumNodes() {
		t.Fatalf("snapshot has %d nodes, cluster has %d", snap.NumNodes(), c.NumNodes())
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot graph invalid: %v", err)
	}

	// Reload onto a fresh cluster and compare every cell.
	c2 := MustNewCluster(Config{Machines: 5})
	if err := c2.LoadGraph(snap); err != nil {
		t.Fatal(err)
	}
	n := c.NumNodes()
	for v := int64(0); v < n; v++ {
		id := graph.NodeID(v)
		a, okA := c.Load(0, id)
		b, okB := c2.Load(0, id)
		if !okA || !okB {
			t.Fatalf("vertex %d: load ok=%v/%v", v, okA, okB)
		}
		la := c.Labels().Name(a.Label)
		lb := c2.Labels().Name(b.Label)
		if la != lb {
			t.Fatalf("vertex %d: label %q != %q", v, la, lb)
		}
		if len(a.Neighbors) != len(b.Neighbors) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(a.Neighbors), len(b.Neighbors))
		}
		for i := range a.Neighbors {
			if a.Neighbors[i] != b.Neighbors[i] {
				t.Fatalf("vertex %d: neighbor %d: %d != %d", v, i, a.Neighbors[i], b.Neighbors[i])
			}
		}
	}

	// The removed edge must be gone, the stitched edge present.
	if snap.HasEdge(target[0], target[1]) {
		t.Fatalf("removed edge (%d,%d) survived the snapshot", target[0], target[1])
	}
	if !snap.HasEdge(graph.NodeID(g.NumNodes()), graph.NodeID(g.NumNodes()+1)) {
		t.Fatal("stitched edge missing from the snapshot")
	}
}

func TestRestoreEpoch(t *testing.T) {
	g := rmat.MustGenerate(rmat.Params{Scale: 4, AvgDegree: 3, NumLabels: 2, Seed: 1})
	c := MustNewCluster(Config{Machines: 2})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	c.RestoreEpoch(41)
	if _, err := c.AddNode("x"); err != nil {
		t.Fatal(err)
	}
	if e := c.Epoch(); e != 42 {
		t.Fatalf("epoch after restore+mutation = %d, want 42", e)
	}
}

func TestSnapshotGraphUnloaded(t *testing.T) {
	c := MustNewCluster(Config{Machines: 1})
	if _, err := c.SnapshotGraph(); err == nil {
		t.Fatal("snapshot of an unloaded cluster succeeded")
	}
}
