package memcloud

import "stwig/internal/graph"

// Store is one machine's share of the graph, laid out Trinity-style: a
// single adjacency arena plus a fixed-width cell directory, instead of one
// heap object per vertex. §2.2 reports 50M 35-byte objects costing 3.9 GB on
// a managed heap versus 1.6 GB in a memory trunk; the flat layout here is
// the same idea and is what lets the load benchmark (Table 2) scale.
type Store struct {
	dir   map[graph.NodeID]cellRef
	arena []graph.NodeID // concatenated adjacency of all local vertices
}

type cellRef struct {
	off   int64
	deg   int32
	label graph.LabelID
}

// Cell is the unit returned by Cloud.Load: a vertex's label and the IDs of
// all its neighbors (local or not). For local loads, Neighbors aliases the
// arena and must not be modified; remote loads receive a copy.
type Cell struct {
	ID        graph.NodeID
	Label     graph.LabelID
	Neighbors []graph.NodeID
}

// newStore sizes the directory for the expected number of local vertices.
func newStore(expectedNodes int64) *Store {
	return &Store{dir: make(map[graph.NodeID]cellRef, expectedNodes)}
}

// put inserts a vertex cell. Neighbors are appended to the arena.
func (s *Store) put(id graph.NodeID, label graph.LabelID, neighbors []graph.NodeID) {
	off := int64(len(s.arena))
	s.arena = append(s.arena, neighbors...)
	s.dir[id] = cellRef{off: off, deg: int32(len(neighbors)), label: label}
}

// load returns the cell for id, if locally stored.
func (s *Store) load(id graph.NodeID) (Cell, bool) {
	ref, ok := s.dir[id]
	if !ok {
		return Cell{}, false
	}
	return Cell{
		ID:        id,
		Label:     ref.label,
		Neighbors: s.arena[ref.off : ref.off+int64(ref.deg)],
	}, true
}

// label returns the label of a locally stored vertex.
func (s *Store) labelOf(id graph.NodeID) (graph.LabelID, bool) {
	ref, ok := s.dir[id]
	if !ok {
		return graph.NoLabel, false
	}
	return ref.label, true
}

// numNodes returns the number of locally stored vertices.
func (s *Store) numNodes() int64 { return int64(len(s.dir)) }

// memoryBytes estimates resident bytes: arena entries are 8 bytes, and each
// directory entry costs roughly 8 (key) + 16 (ref) + map overhead ≈ 48.
func (s *Store) memoryBytes() int64 {
	return int64(len(s.arena))*8 + int64(len(s.dir))*48
}
