package memcloud

import "stwig/internal/graph"

// Machine is one simulated cluster member: a partition's slab store plus its
// local string index. Query execution runs one goroutine per machine (see
// Cluster.ParallelEach); a Machine's read API is safe for concurrent use
// after LoadGraph.
type Machine struct {
	id      int
	cluster *Cluster
	store   *Store
	index   *StringIndex
}

// ID returns the machine's cluster index.
func (m *Machine) ID() int { return m.id }

// Cluster returns the owning cluster.
func (m *Machine) Cluster() *Cluster { return m.cluster }

// LocalIDs is the paper's Index.getID(label) — only local vertices, sorted.
// The result aliases the index; callers must not modify it.
func (m *Machine) LocalIDs(label graph.LabelID) []graph.NodeID {
	return m.index.IDs(label)
}

// LocalLabelCount returns how many local vertices carry label.
func (m *Machine) LocalLabelCount(label graph.LabelID) int {
	return m.index.Count(label)
}

// NumLocalNodes returns the partition's vertex count.
func (m *Machine) NumLocalNodes() int64 { return m.store.numNodes() }

// Load is Cloud.Load(id) issued from this machine; remote vertices are
// fetched through the fabric and accounted.
func (m *Machine) Load(id graph.NodeID) (Cell, bool) {
	return m.cluster.Load(m.id, id)
}

// LoadLocal loads a cell only if this machine owns it.
func (m *Machine) LoadLocal(id graph.NodeID) (Cell, bool) {
	return m.store.load(id)
}

// HasLabel is Index.hasLabel(id, label) issued from this machine.
func (m *Machine) HasLabel(id graph.NodeID, label graph.LabelID) bool {
	return m.cluster.HasLabel(m.id, id, label)
}

// LabelsOfBatch resolves labels for ids with per-owner message batching,
// appending into out (which is returned re-sliced).
func (m *Machine) LabelsOfBatch(ids []graph.NodeID, out []graph.LabelID) []graph.LabelID {
	return m.cluster.LabelsOfBatch(m.id, ids, out)
}

// Owns reports whether this machine owns vertex id.
func (m *Machine) Owns(id graph.NodeID) bool {
	return m.cluster.Owner(id) == m.id
}
