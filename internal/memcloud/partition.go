// Package memcloud simulates the Trinity memory cloud the paper deploys
// graphs on (§2.2): a cluster of machines whose RAM jointly holds one large
// graph, addressed through a unified ID space. Each simulated machine owns a
// hash partition of the vertices, stores its adjacency in a flat slab (the
// "memory trunk" design: one arena, no per-object heap overhead), keeps a
// local string index mapping labels to local vertex IDs, and reaches remote
// vertices through a message fabric that accounts every message and byte.
//
// The package provides exactly the atomic operators the paper's Algorithm 1
// needs — Cloud.Load, Index.getID, Index.hasLabel — plus the batch variants
// that correspond to Trinity's message-merging network optimizations, and
// the label-pair preprocessing that §5.3 uses to build cluster graphs.
package memcloud

import "stwig/internal/graph"

// Partitioner assigns every vertex to a machine. The paper emphasizes that
// results hold under random partitioning ("each node ... is assigned to a
// machine by a hashing function", §4.3), which HashPartitioner implements.
type Partitioner interface {
	// Owner returns the machine index owning v, in [0, Machines()).
	Owner(v graph.NodeID) int
	// Machines returns the number of partitions.
	Machines() int
}

// HashPartitioner spreads vertices with a Fibonacci multiplicative hash so
// that consecutively numbered vertices (which generators emit) do not land
// on the same machine in runs.
type HashPartitioner struct {
	K int
}

// Owner implements Partitioner.
func (p HashPartitioner) Owner(v graph.NodeID) int {
	h := uint64(v) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(p.K))
}

// Machines implements Partitioner.
func (p HashPartitioner) Machines() int { return p.K }

// BFSPartitioner assigns vertices to machines by chunked breadth-first
// traversal: contiguous BFS regions land on the same machine, so
// neighborhoods mostly stay machine-local. The paper deliberately avoids
// relying on any particular partitioning ("our performance results are
// obtained in the setting where the graph is randomly partitioned", §4.3),
// but notes load sets profit from data distribution — this partitioner is
// the locality end of that spectrum, used by the ablation experiments.
//
// Build one with NewBFSPartitioner; it precomputes the full assignment.
type BFSPartitioner struct {
	k      int
	owners []uint8
}

// NewBFSPartitioner partitions g's vertices into k balanced BFS chunks.
func NewBFSPartitioner(g *graph.Graph, k int) *BFSPartitioner {
	n := g.NumNodes()
	owners := make([]uint8, n)
	per := n/int64(k) + 1
	assigned := int64(0)
	current := 0
	visited := make([]bool, n)
	var queue []graph.NodeID
	assign := func(v graph.NodeID) {
		owners[v] = uint8(current)
		assigned++
		if assigned%per == 0 && current < k-1 {
			current++
		}
	}
	for start := int64(0); start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], graph.NodeID(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			assign(v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return &BFSPartitioner{k: k, owners: owners}
}

// Owner implements Partitioner. Vertices added after construction (dynamic
// updates) fall back to a hash placement.
func (p *BFSPartitioner) Owner(v graph.NodeID) int {
	if int64(v) < int64(len(p.owners)) {
		return int(p.owners[v])
	}
	return HashPartitioner{K: p.k}.Owner(v)
}

// Machines implements Partitioner.
func (p *BFSPartitioner) Machines() int { return p.k }

// RangePartitioner assigns contiguous ID ranges to machines. Useful in tests
// where partition placement must be predictable, and as a worst-case
// contrast to hash partitioning in ablation benches.
type RangePartitioner struct {
	K int
	N int64 // total vertex count
}

// Owner implements Partitioner.
func (p RangePartitioner) Owner(v graph.NodeID) int {
	per := (p.N + int64(p.K) - 1) / int64(p.K)
	if per == 0 {
		return 0
	}
	m := int(int64(v) / per)
	if m >= p.K {
		m = p.K - 1
	}
	return m
}

// Machines implements Partitioner.
func (p RangePartitioner) Machines() int { return p.K }
