package memcloud

import (
	"fmt"
	"sync/atomic"
	"time"
)

// NetStats is a snapshot of cluster communication counters. The experiments
// in §6 attribute performance differences to network traffic ("more network
// traffic and synchronization cost will be incurred with more machines"), so
// the fabric counts every simulated message and payload byte.
type NetStats struct {
	Messages uint64
	Bytes    uint64
}

func (s NetStats) String() string {
	return fmt.Sprintf("messages=%d bytes=%d", s.Messages, s.Bytes)
}

// Sub returns the delta s - earlier, for measuring a window.
func (s NetStats) Sub(earlier NetStats) NetStats {
	return NetStats{Messages: s.Messages - earlier.Messages, Bytes: s.Bytes - earlier.Bytes}
}

// netCounters is the live, atomically updated form.
type netCounters struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
}

func (c *netCounters) account(msgs, payloadBytes uint64) {
	c.messages.Add(msgs)
	c.bytes.Add(payloadBytes)
}

func (c *netCounters) snapshot() NetStats {
	return NetStats{Messages: c.messages.Load(), Bytes: c.bytes.Load()}
}

func (c *netCounters) reset() {
	c.messages.Store(0)
	c.bytes.Store(0)
}

// Wire-size model: every message carries a fixed header plus 8 bytes per
// vertex ID or per label word shipped. The constants only need to be
// consistent, not exact, for the communication comparisons (load sets vs
// all-to-all) to be meaningful.
const (
	msgHeaderBytes = 16
	wordBytes      = 8
)

func payloadSize(words int) uint64 {
	return uint64(msgHeaderBytes + words*wordBytes)
}

// NetworkModel converts message/byte counters into modeled transfer time,
// for simulation runs on hosts without real hardware parallelism (the
// speed-up experiments use it; see core.Options.SimulateParallel). The
// defaults approximate the paper's GigE cluster: ~1 Gbit/s effective
// bandwidth and a small per-message overhead reflecting Trinity's
// aggressive message batching.
type NetworkModel struct {
	// LatencyPerMessage is charged once per accounted message.
	LatencyPerMessage time.Duration
	// BytesPerSecond divides the accounted payload bytes.
	BytesPerSecond int64
}

// DefaultNetworkModel mirrors the paper's 1 GigE fabric.
func DefaultNetworkModel() NetworkModel {
	return NetworkModel{LatencyPerMessage: 2 * time.Microsecond, BytesPerSecond: 125_000_000}
}

// TransferTime models the wall time to move the given cluster-wide traffic
// across a cluster of `machines` members. Each machine has its own NIC, so
// symmetric traffic moves in parallel: the model divides aggregate bytes
// and messages by the machine count (the per-machine share approximates the
// max over machines for the exchange patterns the engine generates).
func (m NetworkModel) TransferTime(s NetStats, machines int) time.Duration {
	if m.BytesPerSecond <= 0 && m.LatencyPerMessage <= 0 {
		return 0
	}
	if machines < 1 {
		machines = 1
	}
	perMachineMsgs := s.Messages / uint64(machines)
	perMachineBytes := s.Bytes / uint64(machines)
	d := time.Duration(perMachineMsgs) * m.LatencyPerMessage
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(perMachineBytes) / float64(m.BytesPerSecond) * float64(time.Second))
	}
	return d
}
