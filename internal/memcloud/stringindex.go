package memcloud

import (
	"sort"

	"stwig/internal/graph"
)

// StringIndex is the only index the paper allows itself (§1.1, §1.3): a
// linear-size, linear-build-time mapping from vertex labels to vertex IDs.
// Each machine indexes only its local vertices ("The string index in each
// machine only maps node labels to IDs of local nodes", §4.3).
type StringIndex struct {
	byLabel map[graph.LabelID][]graph.NodeID
}

func newStringIndex() *StringIndex {
	return &StringIndex{byLabel: make(map[graph.LabelID][]graph.NodeID)}
}

// add records one vertex under its label.
func (ix *StringIndex) add(id graph.NodeID, label graph.LabelID) {
	ix.byLabel[label] = append(ix.byLabel[label], id)
}

// finalize sorts posting lists for deterministic iteration.
func (ix *StringIndex) finalize() {
	for _, ids := range ix.byLabel {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
}

// IDs returns the local vertices carrying label, sorted ascending. The
// returned slice is shared; callers must not modify it. This is the paper's
// Index.getID(label).
func (ix *StringIndex) IDs(label graph.LabelID) []graph.NodeID {
	return ix.byLabel[label]
}

// Count returns the number of local vertices carrying label, without
// materializing anything. Used for selectivity estimates.
func (ix *StringIndex) Count(label graph.LabelID) int {
	return len(ix.byLabel[label])
}

// memoryBytes estimates the index's resident size: 8 bytes per posting plus
// per-label map overhead. The point of Table 1's "Index Size" column is that
// this is linear in the vertex count.
func (ix *StringIndex) memoryBytes() int64 {
	var total int64
	for _, ids := range ix.byLabel {
		total += int64(len(ids))*8 + 48
	}
	return total
}
