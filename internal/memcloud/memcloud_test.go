package memcloud

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stwig/internal/graph"
	"stwig/internal/rmat"
)

// figure5Graph approximates the paper's Figure 5: a graph spread over 4
// machines. We use a RangePartitioner so placement is predictable.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(
		[]string{"a", "b", "c", "d", "e", "f", "a", "b"},
		[][2]int64{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}},
		graph.Undirected(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func loadedCluster(t *testing.T, g *graph.Graph, k int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Machines: k, Partitioner: RangePartitioner{K: k, N: g.NumNodes()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Machines: 0}); err == nil {
		t.Fatal("accepted 0 machines")
	}
	if _, err := NewCluster(Config{Machines: MaxMachines + 1}); err == nil {
		t.Fatal("accepted too many machines")
	}
	if _, err := NewCluster(Config{Machines: 3, Partitioner: HashPartitioner{K: 2}}); err == nil {
		t.Fatal("accepted mismatched partitioner")
	}
}

func TestLoadGraphPartitionsAllNodes(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	var total int64
	for i := 0; i < c.NumMachines(); i++ {
		total += c.Machine(i).NumLocalNodes()
	}
	if total != g.NumNodes() {
		t.Fatalf("machines hold %d nodes, graph has %d", total, g.NumNodes())
	}
	if err := c.LoadGraph(g); err == nil {
		t.Fatal("double load accepted")
	}
}

func TestLocalIDsOnlyLocal(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	for i := 0; i < c.NumMachines(); i++ {
		m := c.Machine(i)
		for _, name := range g.Labels().Names() {
			l := g.Labels().MustLookup(name)
			for _, id := range m.LocalIDs(l) {
				if c.Owner(id) != i {
					t.Fatalf("machine %d string index lists non-local vertex %d", i, id)
				}
				if g.Label(id) != l {
					t.Fatalf("vertex %d indexed under wrong label", id)
				}
			}
		}
	}
}

func TestLocalIDsCoverEveryVertex(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	seen := map[graph.NodeID]bool{}
	for i := 0; i < c.NumMachines(); i++ {
		m := c.Machine(i)
		for _, name := range g.Labels().Names() {
			for _, id := range m.LocalIDs(g.Labels().MustLookup(name)) {
				if seen[id] {
					t.Fatalf("vertex %d indexed twice", id)
				}
				seen[id] = true
			}
		}
	}
	if int64(len(seen)) != g.NumNodes() {
		t.Fatalf("indexes cover %d vertices, graph has %d", len(seen), g.NumNodes())
	}
}

func TestLoadReturnsCorrectCell(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	for v := int64(0); v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		cell, ok := c.Load(c.Owner(id), id)
		if !ok {
			t.Fatalf("Load(%d) not found", id)
		}
		if cell.Label != g.Label(id) {
			t.Fatalf("Load(%d) label = %d, want %d", id, cell.Label, g.Label(id))
		}
		want := g.Neighbors(id)
		if len(cell.Neighbors) != len(want) {
			t.Fatalf("Load(%d) has %d neighbors, want %d", id, len(cell.Neighbors), len(want))
		}
		for i := range want {
			if cell.Neighbors[i] != want[i] {
				t.Fatalf("Load(%d) neighbors = %v, want %v", id, cell.Neighbors, want)
			}
		}
	}
}

func TestLoadMissingVertex(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 2)
	if _, ok := c.Load(0, graph.NodeID(10_000)); ok {
		t.Fatal("Load of nonexistent vertex succeeded")
	}
}

func TestRemoteLoadAccounted(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	c.ResetNetStats()

	// Local load: no traffic.
	id := graph.NodeID(0)
	owner := c.Owner(id)
	if _, ok := c.Load(owner, id); !ok {
		t.Fatal("local load failed")
	}
	if s := c.NetStats(); s.Messages != 0 {
		t.Fatalf("local load accounted %v", s)
	}

	// Remote load: one message with neighbors shipped.
	other := (owner + 1) % c.NumMachines()
	cell, ok := c.Load(other, id)
	if !ok {
		t.Fatal("remote load failed")
	}
	s := c.NetStats()
	if s.Messages != 1 {
		t.Fatalf("remote load messages = %d, want 1", s.Messages)
	}
	wantBytes := payloadSize(2 + len(cell.Neighbors))
	if s.Bytes != wantBytes {
		t.Fatalf("remote load bytes = %d, want %d", s.Bytes, wantBytes)
	}
}

func TestRemoteCellIsCopy(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	id := graph.NodeID(0)
	owner := c.Owner(id)
	remote, _ := c.Load((owner+1)%4, id)
	if len(remote.Neighbors) == 0 {
		t.Skip("vertex has no neighbors")
	}
	remote.Neighbors[0] = graph.NodeID(999)
	local, _ := c.Load(owner, id)
	if local.Neighbors[0] == 999 {
		t.Fatal("remote cell aliases owner's arena")
	}
}

func TestHasLabel(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	la := g.Labels().MustLookup("a")
	lb := g.Labels().MustLookup("b")
	if !c.HasLabel(c.Owner(0), 0, la) {
		t.Fatal("HasLabel(0, a) = false")
	}
	if c.HasLabel(c.Owner(0), 0, lb) {
		t.Fatal("HasLabel(0, b) = true")
	}
	if c.HasLabel(0, graph.NodeID(10_000), la) {
		t.Fatal("HasLabel on missing vertex = true")
	}
}

func TestHasLabelRemoteAccounted(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	c.ResetNetStats()
	id := graph.NodeID(0)
	other := (c.Owner(id) + 1) % 4
	c.HasLabel(other, id, g.Labels().MustLookup("a"))
	if s := c.NetStats(); s.Messages != 1 {
		t.Fatalf("remote HasLabel messages = %d, want 1", s.Messages)
	}
}

func TestLabelsOfBatchCorrectAndBatched(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	c.ResetNetStats()
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	labels := c.LabelsOfBatch(0, ids, nil)
	for i, id := range ids {
		if labels[i] != g.Label(id) {
			t.Fatalf("batch label of %d = %d, want %d", id, labels[i], g.Label(id))
		}
	}
	// With a range partitioner over 8 nodes and 4 machines, machine 0 owns
	// nodes 0-1; the other 6 lookups go to 3 remote machines => 3 messages.
	if s := c.NetStats(); s.Messages != 3 {
		t.Fatalf("batch messages = %d, want 3 (one per remote owner)", s.Messages)
	}
}

func TestLabelsOfBatchMissingVertex(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 2)
	labels := c.LabelsOfBatch(0, []graph.NodeID{0, 10_000}, nil)
	if labels[1] != graph.NoLabel {
		t.Fatalf("missing vertex label = %d, want NoLabel", labels[1])
	}
}

func TestShipWords(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 2)
	c.ResetNetStats()
	c.ShipWords(0, 0, 100) // local: free
	if s := c.NetStats(); s.Messages != 0 {
		t.Fatal("local ship accounted")
	}
	c.ShipWords(0, 1, 100)
	s := c.NetStats()
	if s.Messages != 1 || s.Bytes != payloadSize(100) {
		t.Fatalf("ship stats = %v", s)
	}
}

func TestGlobalLabelCount(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	if got := c.GlobalLabelCount(g.Labels().MustLookup("a")); got != 2 {
		t.Fatalf("GlobalLabelCount(a) = %d, want 2", got)
	}
	if got := c.GlobalLabelCount(g.Labels().MustLookup("d")); got != 1 {
		t.Fatalf("GlobalLabelCount(d) = %d, want 1", got)
	}
}

func TestCrossMaskReflectsEdges(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	// Edge (0,1) = (a,b); owner(0)=0 owner(1)=0 under range partition of 8
	// nodes over 4 machines (2 per machine).
	la := g.Labels().MustLookup("a")
	lb := g.Labels().MustLookup("b")
	if c.CrossMask(0, la, lb)&1 == 0 {
		t.Fatal("intra-machine (a,b) pair not recorded for machine 0")
	}
	// Edge (7,0): node 7 labeled b on machine 3, node 0 labeled a on machine 0.
	if c.CrossMask(3, lb, la)&1 == 0 {
		t.Fatal("cross-machine (b,a) pair m3->m0 not recorded")
	}
	if c.CrossMask(0, la, lb)&(1<<3) == 0 {
		t.Fatal("cross-machine (a,b) pair m0->m3 not recorded")
	}
	// Never-adjacent label pair.
	ld := g.Labels().MustLookup("d")
	lf := g.Labels().MustLookup("f")
	for i := 0; i < 4; i++ {
		if c.CrossMask(i, ld, lf) != 0 {
			t.Fatalf("phantom (d,f) pair on machine %d", i)
		}
	}
}

func TestPropertyCrossMaskSoundAndComplete(t *testing.T) {
	// For random graphs and random partitions: CrossMask(i, la, lb) has bit
	// j set iff some edge (u,v) with labels (la,lb) crosses (i,j).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
		labels := []string{"a", "b", "c"}
		for _, l := range labels {
			b.Labels().Intern(l) // every label resolvable even if unused
		}
		for i := 0; i < n; i++ {
			b.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()
		k := 2 + rng.Intn(4)
		c := MustNewCluster(Config{Machines: k})
		if err := c.LoadGraph(g); err != nil {
			return false
		}
		// Recompute expected masks by brute force.
		want := map[[3]uint64]uint64{}
		for v := int64(0); v < g.NumNodes(); v++ {
			u := graph.NodeID(v)
			i := c.Owner(u)
			for _, w := range g.Neighbors(u) {
				key := [3]uint64{uint64(i), uint64(g.Label(u)), uint64(g.Label(w))}
				want[key] |= 1 << uint(c.Owner(w))
			}
		}
		for key, mask := range want {
			if c.CrossMask(int(key[0]), graph.LabelID(key[1]), graph.LabelID(key[2])) != mask {
				return false
			}
		}
		// Soundness: no extra bits for pairs we did not see.
		for i := 0; i < k; i++ {
			for _, la := range []string{"a", "b", "c"} {
				for _, lb := range []string{"a", "b", "c"} {
					key := [3]uint64{uint64(i), uint64(g.Labels().MustLookup(la)), uint64(g.Labels().MustLookup(lb))}
					got := c.CrossMask(i, g.Labels().MustLookup(la), g.Labels().MustLookup(lb))
					if got != want[key] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionerBalance(t *testing.T) {
	p := HashPartitioner{K: 8}
	counts := make([]int, 8)
	const n = 100_000
	for v := 0; v < n; v++ {
		counts[p.Owner(graph.NodeID(v))]++
	}
	for i, got := range counts {
		share := float64(got) / n
		if share < 0.10 || share > 0.15 { // expect 0.125
			t.Fatalf("machine %d share %.3f unbalanced", i, share)
		}
	}
}

func TestRangePartitioner(t *testing.T) {
	p := RangePartitioner{K: 4, N: 8}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for v, w := range want {
		if got := p.Owner(graph.NodeID(v)); got != w {
			t.Fatalf("Owner(%d) = %d, want %d", v, got, w)
		}
	}
	// Out-of-range IDs clamp to the last machine rather than panic.
	if got := p.Owner(graph.NodeID(100)); got != 3 {
		t.Fatalf("Owner(100) = %d, want 3", got)
	}
	if (RangePartitioner{K: 2, N: 0}).Owner(0) != 0 {
		t.Fatal("empty-range partitioner should map to machine 0")
	}
}

func TestParallelEachRunsAllMachines(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	seen := make([]bool, 4)
	var mu sort.IntSlice // abuse: no, use channel instead
	_ = mu
	results := make(chan int, 4)
	c.ParallelEach(func(m *Machine) { results <- m.ID() })
	close(results)
	for id := range results {
		seen[id] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("machine %d did not run", i)
		}
	}
}

func TestLoadLargerGraphAcrossMachines(t *testing.T) {
	g := rmat.MustGenerate(rmat.Params{Scale: 11, AvgDegree: 8, NumLabels: 8, Seed: 5})
	c := MustNewCluster(Config{Machines: 6})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 6; i++ {
		total += c.Machine(i).NumLocalNodes()
	}
	if total != g.NumNodes() {
		t.Fatalf("partition total = %d, want %d", total, g.NumNodes())
	}
	if c.TotalMemoryBytes() <= 0 || c.StringIndexBytes() <= 0 {
		t.Fatal("memory estimates not positive")
	}
	// Spot-check 100 random vertices load correctly from machine 0.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		id := graph.NodeID(rng.Int63n(g.NumNodes()))
		cell, ok := c.Load(0, id)
		if !ok || cell.Label != g.Label(id) || len(cell.Neighbors) != g.Degree(id) {
			t.Fatalf("Load(%d) mismatch", id)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	g := testGraph(t)
	c := loadedCluster(t, g, 4)
	m := c.Machine(1)
	if m.ID() != 1 || m.Cluster() != c {
		t.Fatal("machine accessors wrong")
	}
	if !m.Owns(graph.NodeID(2)) || m.Owns(graph.NodeID(0)) {
		t.Fatal("Owns wrong under range partition")
	}
	if _, ok := m.LoadLocal(graph.NodeID(2)); !ok {
		t.Fatal("LoadLocal of owned vertex failed")
	}
	if _, ok := m.LoadLocal(graph.NodeID(0)); ok {
		t.Fatal("LoadLocal of foreign vertex succeeded")
	}
	if m.LocalLabelCount(g.Labels().MustLookup("c")) != 1 {
		t.Fatal("LocalLabelCount wrong")
	}
	cell, ok := m.Load(graph.NodeID(0)) // remote via machine API
	if !ok || cell.Label != g.Label(0) {
		t.Fatal("machine.Load remote failed")
	}
	if !m.HasLabel(graph.NodeID(0), g.Label(0)) {
		t.Fatal("machine.HasLabel failed")
	}
	labels := m.LabelsOfBatch([]graph.NodeID{0, 2}, nil)
	if labels[0] != g.Label(0) || labels[1] != g.Label(2) {
		t.Fatal("machine.LabelsOfBatch wrong")
	}
}

func TestNetStatsSub(t *testing.T) {
	a := NetStats{Messages: 10, Bytes: 100}
	b := NetStats{Messages: 4, Bytes: 40}
	d := a.Sub(b)
	if d.Messages != 6 || d.Bytes != 60 {
		t.Fatalf("Sub = %v", d)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}
