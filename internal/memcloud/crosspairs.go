package memcloud

import "stwig/internal/graph"

// crossPairs is the preprocessing structure of §5.3: "for each pairs of
// machines, we record all possible pairs of node labels" joined by a cross
// edge. Stored inverted — keyed by (source machine, label pair) with a
// bitmask of destination machines — so that building a query-specific
// cluster graph is a handful of map probes per query edge, never touching
// the data graph.
type crossPairs struct {
	k     int
	masks []map[uint64]uint64 // per source machine: labelPairKey -> dest machine bitmask
}

func newCrossPairs(k int) *crossPairs {
	cp := &crossPairs{k: k, masks: make([]map[uint64]uint64, k)}
	for i := range cp.masks {
		cp.masks[i] = make(map[uint64]uint64)
	}
	return cp
}

func labelPairKey(la, lb graph.LabelID) uint64 {
	return uint64(la)<<32 | uint64(lb)
}

// add records that machine i holds a vertex labeled la adjacent to a vertex
// labeled lb held by machine j.
func (cp *crossPairs) add(i, j int, la, lb graph.LabelID) {
	cp.masks[i][labelPairKey(la, lb)] |= 1 << uint(j)
}

// mask returns the bitmask of machines j such that (i, la) -> (j, lb) cross
// edges exist.
func (cp *crossPairs) mask(i int, la, lb graph.LabelID) uint64 {
	return cp.masks[i][labelPairKey(la, lb)]
}
