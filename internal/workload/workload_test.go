package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/memcloud"
	"stwig/internal/rmat"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return rmat.MustGenerate(rmat.Params{Scale: 10, AvgDegree: 8, NumLabels: 6, Seed: 3})
}

func TestDFSQueryShape(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 5, 8, 10} {
		q, err := DFSQuery(g, n, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if q.NumVertices() != n {
			t.Fatalf("n=%d: got %d vertices", n, q.NumVertices())
		}
		if !q.Connected() {
			t.Fatalf("n=%d: disconnected DFS query", n)
		}
		if q.NumEdges() < n-1 {
			t.Fatalf("n=%d: only %d edges", n, q.NumEdges())
		}
	}
}

func TestDFSQueryAlwaysHasAMatch(t *testing.T) {
	// A DFS query is cut out of the data graph, so matching it against the
	// same graph must find at least one embedding.
	g := rmat.MustGenerate(rmat.Params{Scale: 8, AvgDegree: 6, NumLabels: 8, Seed: 7})
	c := memcloud.MustNewCluster(memcloud.Config{Machines: 3})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(c, core.Options{MatchBudget: 16})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		q, err := DFSQuery(g, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) == 0 {
			t.Fatalf("DFS query %d has no matches in its source graph:\n%s", i, q)
		}
	}
}

func TestDFSQueryErrors(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := DFSQuery(g, 1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	empty := graph.NewBuilder().Build()
	if _, err := DFSQuery(empty, 3, rng); err == nil {
		t.Fatal("empty graph accepted")
	}
	// A graph of isolated vertices has no component of size 3.
	b := graph.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("x")
	}
	if _, err := DFSQuery(b.Build(), 3, rng); err == nil {
		t.Fatal("isolated-vertex graph produced a DFS query")
	}
}

func TestRandomQueryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	labels := []string{"a", "b", "c"}
	q, err := RandomQuery(10, 20, labels, rng)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 10 || q.NumEdges() != 20 {
		t.Fatalf("size = (%d,%d), want (10,20)", q.NumVertices(), q.NumEdges())
	}
	if !q.Connected() {
		t.Fatal("random query disconnected")
	}
}

func TestRandomQueryEdgeClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Too few edges requested: raised to spanning tree.
	q, err := RandomQuery(5, 0, []string{"a"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4 (spanning tree)", q.NumEdges())
	}
	// Too many: clamped to complete graph.
	q2, err := RandomQuery(4, 100, []string{"a"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if q2.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6 (K4)", q2.NumEdges())
	}
}

func TestRandomQueryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := RandomQuery(1, 5, []string{"a"}, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RandomQuery(5, 5, nil, rng); err == nil {
		t.Fatal("empty label collection accepted")
	}
}

func TestPropertyRandomQueryConnected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		e := rng.Intn(3 * n)
		q, err := RandomQuery(n, e, []string{"a", "b", "c", "d"}, rng)
		if err != nil {
			return false
		}
		return q.Connected() && q.NumVertices() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySet(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(5))
	qs, err := QuerySet(10, func() (*core.Query, error) { return DFSQuery(g, 5, rng) })
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	// Generator that always fails propagates the error.
	if _, err := QuerySet(3, func() (*core.Query, error) {
		return nil, errFake
	}); err == nil {
		t.Fatal("always-failing generator succeeded")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestSynthPatentsCharacteristics(t *testing.T) {
	g, err := SynthPatents(PatentsParams{Nodes: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20_000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Average degree near the real dataset's ≈ 8.7 (directed 4.4, stored
	// both ways).
	if d := g.AvgDegree(); d < 5 || d > 13 {
		t.Fatalf("avg degree = %.1f, want ≈ 8.7", d)
	}
	if got := g.Labels().Len(); got != 418 {
		t.Fatalf("labels = %d, want 418", got)
	}
	// Zipf skew: the most frequent class should dominate the median class.
	freq := g.LabelFrequencies()
	var maxF, nonzero int64
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
		if f > 0 {
			nonzero++
		}
	}
	if maxF < 20_000/50 {
		t.Fatalf("top class only %d nodes; expected skew", maxF)
	}
	// Citation graphs are heavy-tailed.
	if g.MaxDegree() < 5*int(g.AvgDegree()) {
		t.Fatalf("max degree %d not heavy-tailed", g.MaxDegree())
	}
	if _, err := SynthPatents(PatentsParams{Nodes: 5}); err == nil {
		t.Fatal("tiny graph accepted")
	}
}

func TestSynthWordNetCharacteristics(t *testing.T) {
	g, err := SynthWordNet(WordNetParams{Nodes: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Labels().Len(); got != 5 {
		t.Fatalf("labels = %d, want 5", got)
	}
	// Average degree near real ≈ 3.2.
	if d := g.AvgDegree(); d < 2 || d > 5 {
		t.Fatalf("avg degree = %.1f, want ≈ 3.2", d)
	}
	// Nouns dominate.
	freq := g.LabelFrequencies()
	nounID := g.Labels().MustLookup("noun")
	if float64(freq[nounID])/float64(g.NumNodes()) < 0.5 {
		t.Fatalf("noun share = %.2f, want ≈ 0.70", float64(freq[nounID])/float64(g.NumNodes()))
	}
	if _, err := SynthWordNet(WordNetParams{Nodes: 2}); err == nil {
		t.Fatal("tiny graph accepted")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, _ := SynthPatents(PatentsParams{Nodes: 2_000, Seed: 9})
	b, _ := SynthPatents(PatentsParams{Nodes: 2_000, Seed: 9})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("patents generation not deterministic")
	}
	c, _ := SynthWordNet(WordNetParams{Nodes: 2_000, Seed: 9})
	d, _ := SynthWordNet(WordNetParams{Nodes: 2_000, Seed: 9})
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("wordnet generation not deterministic")
	}
}

func TestGraphLabels(t *testing.T) {
	g := testGraph(t)
	if len(GraphLabels(g)) != 6 {
		t.Fatalf("GraphLabels = %v", GraphLabels(g))
	}
}
