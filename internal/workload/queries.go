// Package workload reimplements the paper's experimental workloads (§6.1):
// the two query generators (DFS queries and random queries), and synthetic
// stand-ins for the two real datasets (US Patents and WordNet) whose
// originals are not redistributable here. Substitutions are documented in
// DESIGN.md §2.
package workload

import (
	"fmt"
	"math/rand"

	"stwig/internal/core"
	"stwig/internal/graph"
)

// DFSQuery generates a query by the paper's first method: "DFS traversal
// from a randomly chosen node. The first N nodes are kept as the query
// pattern." Edges among the kept nodes are inherited from the data graph,
// and labels come from the traversed vertices, so the query always has at
// least one match (its own source subgraph).
//
// Returns an error when the component around the chosen start has fewer
// than n vertices after maxAttempts retries.
func DFSQuery(g *graph.Graph, n int, rng *rand.Rand) (*core.Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: DFS query needs at least 2 nodes, got %d", n)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("workload: empty data graph")
	}
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		start := graph.NodeID(rng.Int63n(g.NumNodes()))
		kept := dfsCollect(g, start, n)
		if len(kept) < n {
			continue // start landed in a small component; retry
		}
		idx := make(map[graph.NodeID]int, n)
		labels := make([]string, n)
		for i, v := range kept {
			idx[v] = i
			labels[i] = g.LabelString(v)
		}
		var edges [][2]int
		for i, v := range kept {
			for _, u := range g.Neighbors(v) {
				j, ok := idx[u]
				if ok && i < j {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		q, err := core.NewQuery(labels, edges)
		if err != nil {
			return nil, err
		}
		if !q.Connected() {
			// Cannot happen for a DFS prefix, but guard anyway.
			continue
		}
		return q, nil
	}
	return nil, fmt.Errorf("workload: no component with %d vertices found in %d attempts", n, maxAttempts)
}

// dfsCollect returns the first n vertices of a DFS from start.
func dfsCollect(g *graph.Graph, start graph.NodeID, n int) []graph.NodeID {
	kept := make([]graph.NodeID, 0, n)
	seen := map[graph.NodeID]bool{start: true}
	stack := []graph.NodeID{start}
	for len(stack) > 0 && len(kept) < n {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		kept = append(kept, v)
		ns := g.Neighbors(v)
		// Push in reverse so lower-ID neighbors are visited first.
		for i := len(ns) - 1; i >= 0; i-- {
			if !seen[ns[i]] {
				seen[ns[i]] = true
				stack = append(stack, ns[i])
			}
		}
	}
	return kept
}

// RandomQuery generates a query by the paper's second method: "randomly
// adding E edges among N given nodes. A spanning tree is generated on the
// generated query to guarantee it is a connected graph. The nodes of a
// query are labelled from a given label collection." Defaults in the paper
// are N=10, E=20.
//
// E counts total edges including the spanning tree; values below N-1 are
// raised to N-1 (a tree), and values above the complete-graph capacity are
// clamped.
func RandomQuery(n, e int, labels []string, rng *rand.Rand) (*core.Query, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: random query needs at least 2 nodes, got %d", n)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("workload: empty label collection")
	}
	maxEdges := n * (n - 1) / 2
	if e < n-1 {
		e = n - 1
	}
	if e > maxEdges {
		e = maxEdges
	}
	ls := make([]string, n)
	for i := range ls {
		ls[i] = labels[rng.Intn(len(labels))]
	}
	seen := make(map[[2]int]bool, e)
	edges := make([][2]int, 0, e)
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, [2]int{u, v})
		return true
	}
	// Random spanning tree: connect each vertex (in a random order) to a
	// random earlier vertex.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for len(edges) < e {
		add(rng.Intn(n), rng.Intn(n))
	}
	return core.NewQuery(ls, edges)
}

// QuerySet generates count queries with gen, collecting successes; the
// experiments run 100 queries per configuration and average (§6.1).
func QuerySet(count int, gen func() (*core.Query, error)) ([]*core.Query, error) {
	out := make([]*core.Query, 0, count)
	var lastErr error
	for attempts := 0; len(out) < count && attempts < count*4; attempts++ {
		q, err := gen()
		if err != nil {
			lastErr = err
			continue
		}
		out = append(out, q)
	}
	if len(out) < count {
		return out, fmt.Errorf("workload: generated only %d of %d queries: %v", len(out), count, lastErr)
	}
	return out, nil
}

// GraphLabels returns the distinct label strings of a graph, for use as a
// random-query label collection.
func GraphLabels(g *graph.Graph) []string {
	return g.Labels().Names()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
