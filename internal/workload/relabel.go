package workload

import "stwig/internal/graph"

// RelabelByDegree rewrites every vertex's label by degree band — the
// social-network labeling the motif examples and the stwigd demo graph use:
// "celebrity" for degree ≥ celebrityMin, "bot" for degree ≤ botMax,
// "regular" otherwise. The input graph's structure is preserved.
func RelabelByDegree(g *graph.Graph, celebrityMin, botMax int) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	n := g.NumNodes()
	for v := int64(0); v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		switch {
		case d >= celebrityMin:
			b.AddNode("celebrity")
		case d <= botMax:
			b.AddNode("bot")
		default:
			b.AddNode("regular")
		}
	}
	for v := int64(0); v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if graph.NodeID(v) < u {
				b.MustAddEdge(graph.NodeID(v), u)
			}
		}
	}
	return b.Build()
}
