package workload

import (
	"fmt"
	"math"
	"math/rand"

	"stwig/internal/graph"
)

// Synthetic stand-ins for the paper's two real datasets (§6.2). The
// originals (US Patents from NBER, WordNet) are public downloads, which an
// offline build cannot fetch; these generators match the characteristics
// the experiments actually exercise — node/edge ratio, label-alphabet size,
// and label-frequency skew — at a configurable scale. See DESIGN.md §2 for
// the substitution rationale.

// PatentsParams mirrors the US Patents citation graph: 3.77M nodes, 16.5M
// edges (avg degree ≈ 4.4 undirected-counted-once), 418 labels (patent
// property classes) with a skewed (Zipfian) class distribution.
type PatentsParams struct {
	// Nodes scales the graph; the real dataset has 3_774_768.
	Nodes int64
	// Seed fixes generation.
	Seed int64
}

// SynthPatents generates the Patents stand-in: a citation-style graph where
// each "patent" cites a handful of earlier patents with preferential
// attachment (newer patents cite well-cited ones), giving the heavy-tailed
// in-citation distribution of the real graph.
func SynthPatents(p PatentsParams) (*graph.Graph, error) {
	if p.Nodes < 10 {
		return nil, fmt.Errorf("workload: patents graph needs ≥10 nodes, got %d", p.Nodes)
	}
	const numLabels = 418
	const avgCitations = 4 // ≈ 16.5M/3.77M
	rng := rand.New(rand.NewSource(p.Seed))

	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	labelIDs := make([]graph.LabelID, numLabels)
	for i := range labelIDs {
		labelIDs[i] = b.Labels().Intern(fmt.Sprintf("class%03d", i))
	}
	zipf := newZipf(rng, numLabels, 1.1)
	b.AddNodes(p.Nodes, func(int64) graph.LabelID {
		return labelIDs[zipf()]
	})

	// Citations: node v cites earlier nodes; half uniform, half
	// preferential via the "cite a random endpoint of a random prior edge"
	// trick, which realizes preferential attachment without bookkeeping.
	var endpoints []graph.NodeID
	for v := int64(1); v < p.Nodes; v++ {
		cites := 1 + rng.Intn(2*avgCitations-1) // mean ≈ avgCitations
		for c := 0; c < cites; c++ {
			var target graph.NodeID
			if len(endpoints) > 0 && rng.Intn(2) == 0 {
				target = endpoints[rng.Intn(len(endpoints))]
			} else {
				target = graph.NodeID(rng.Int63n(v))
			}
			if target == graph.NodeID(v) {
				continue
			}
			b.MustAddEdge(graph.NodeID(v), target)
			endpoints = append(endpoints, graph.NodeID(v), target)
		}
	}
	return b.Build(), nil
}

// WordNetParams mirrors the WordNet relation graph: 82,670 nodes, 133,445
// edges, and only 5 labels (parts of speech) — the label-poor regime that
// drives the paper's WordNet-vs-Patents contrasts.
type WordNetParams struct {
	// Nodes scales the graph; the real dataset has 82_670.
	Nodes int64
	// Seed fixes generation.
	Seed int64
}

// SynthWordNet generates the WordNet stand-in: a sparse small-world-style
// graph (ring lattice with rewiring plus a sprinkle of long-range edges)
// over 5 part-of-speech labels distributed like WordNet's (nouns dominate).
func SynthWordNet(p WordNetParams) (*graph.Graph, error) {
	if p.Nodes < 10 {
		return nil, fmt.Errorf("workload: wordnet graph needs ≥10 nodes, got %d", p.Nodes)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	labels := []string{"noun", "verb", "adjective", "adverb", "satellite"}
	// Approximate WordNet part-of-speech proportions.
	weights := []float64{0.70, 0.12, 0.09, 0.04, 0.05}

	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	labelIDs := make([]graph.LabelID, len(labels))
	for i, l := range labels {
		labelIDs[i] = b.Labels().Intern(l)
	}
	pick := func() graph.LabelID {
		r := rng.Float64()
		acc := 0.0
		for i, w := range weights {
			acc += w
			if r < acc {
				return labelIDs[i]
			}
		}
		return labelIDs[len(labelIDs)-1]
	}
	b.AddNodes(p.Nodes, func(int64) graph.LabelID { return pick() })

	// Ring lattice (each node to its successor) with 20% rewiring, plus
	// ~0.6 long-range edges per node: average degree ≈ 3.2, matching the
	// real 2*133445/82670 ≈ 3.2.
	n := p.Nodes
	for v := int64(0); v < n; v++ {
		target := (v + 1) % n
		if rng.Float64() < 0.20 {
			target = rng.Int63n(n)
		}
		if target != v {
			b.MustAddEdge(graph.NodeID(v), graph.NodeID(target))
		}
		if rng.Float64() < 0.6 {
			far := rng.Int63n(n)
			if far != v {
				b.MustAddEdge(graph.NodeID(v), graph.NodeID(far))
			}
		}
	}
	return b.Build(), nil
}

// newZipf returns a sampler over [0, n) with exponent s, small-state and
// deterministic. (math/rand's Zipf needs imax tuning; this direct inverse
// CDF over n classes is simpler for label assignment.)
func newZipf(rng *rand.Rand, n int, s float64) func() int {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return func() int {
		r := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}
