// Package stats provides the small measurement helpers the experiment
// harness and benchmarks share: duration summaries and aligned table
// printing for paper-style result rows.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Summary aggregates a sample of durations.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summarize computes a Summary; the zero Summary for an empty sample.
func Summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return Summary{
		Count: len(sorted),
		Mean:  total / time.Duration(len(sorted)),
		P50:   pick(0.50),
		P95:   pick(0.95),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Table accumulates rows and renders them column-aligned, the output format
// of cmd/experiments.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.header))
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// HumanBytes renders a byte count as B/KB/MB/GB with one decimal.
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}
