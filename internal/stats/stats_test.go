package stats

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	ds := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	s := Summarize(ds)
	if s.Count != 5 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Mean != 22*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P50 != 3*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	Summarize(ds)
	if ds[0] != 3 || ds[1] != 1 || ds[2] != 2 {
		t.Fatalf("input mutated: %v", ds)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 42)
	tb.AddRow("b", 3.14159)
	tb.AddRow("c", 2500*time.Microsecond)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "2.5ms") {
		t.Fatalf("duration not formatted: %s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3 * 1024 * 1024, "3.0MB"},
		{5 * 1024 * 1024 * 1024, "5.0GB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
