package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	g := paperFigure1(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf, Undirected())
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestTextParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad record", "x 1 2\n"},
		{"vertex out of order", "v 1 a\n"},
		{"edge fields", "v 0 a\ne 0\n"},
		{"edge unknown vertex", "v 0 a\ne 0 7\n"},
		{"bad vertex id", "v zero a\n"},
		{"bad src", "v 0 a\nv 1 b\ne x 1\n"},
		{"vertex fields", "v 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(c.in)); err == nil {
				t.Fatalf("ReadText(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nv 0 a\nv 1 b\n\ne 0 1\n"
	g, err := ReadText(strings.NewReader(in), Undirected())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := paperFigure1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertGraphsEqual(t, g, g2)
	if g2.Directed() != g.Directed() {
		t.Fatal("directed flag lost")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE----------"))); err == nil {
		t.Fatal("ReadBinary accepted bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := paperFigure1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 12, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadBinary accepted truncation at %d bytes", cut)
		}
	}
}

func TestPropertyBinaryRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, 2*n, []string{"a", "b", "c", "d"})
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int64(0); v < a.NumNodes(); v++ {
		if a.LabelString(NodeID(v)) != b.LabelString(NodeID(v)) {
			return false
		}
		an, bn := a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))
		if len(an) != len(bn) {
			return false
		}
		for i := range an {
			if an[i] != bn[i] {
				return false
			}
		}
	}
	return true
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if !graphsEqual(a, b) {
		t.Fatalf("graphs differ:\n a: %v\n b: %v", a.ComputeStats(), b.ComputeStats())
	}
}
