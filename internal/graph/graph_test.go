package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperFigure1 builds the data graph of Figure 1(a): vertices a1,a2,b1,c1,d1
// with edges forming the example used throughout the paper.
func paperFigure1(t *testing.T) *Graph {
	t.Helper()
	// 0:a1 1:a2 2:b1 3:c1 4:d1
	g, err := FromEdges(
		[]string{"a", "a", "b", "c", "d"},
		[][2]int64{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}},
		Undirected(),
	)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := paperFigure1(t)
	if got, want := g.NumNodes(), int64(5); got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), int64(14); got != want { // 7 undirected edges stored twice
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Directed() {
		t.Fatal("graph built with Undirected() reports Directed")
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	g := paperFigure1(t)
	for v := int64(0); v < g.NumNodes(); v++ {
		ns := g.Neighbors(NodeID(v))
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, ns)
			}
		}
		for _, u := range ns {
			if !g.HasEdge(u, NodeID(v)) {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := paperFigure1(t)
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 2, true}, {2, 0, true}, {0, 1, false}, {0, 4, false}, {3, 4, true},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestLabels(t *testing.T) {
	g := paperFigure1(t)
	if got := g.LabelString(0); got != "a" {
		t.Fatalf("LabelString(0) = %q, want a", got)
	}
	freq := g.LabelFrequencies()
	table := g.Labels()
	byName := map[string]int64{}
	for id, f := range freq {
		byName[table.Name(LabelID(id))] = f
	}
	want := map[string]int64{"a": 2, "b": 1, "c": 1, "d": 1}
	if !reflect.DeepEqual(byName, want) {
		t.Fatalf("LabelFrequencies = %v, want %v", byName, want)
	}
	aNodes := g.NodesWithLabel(table.MustLookup("a"))
	if !reflect.DeepEqual(aNodes, []NodeID{0, 1}) {
		t.Fatalf("NodesWithLabel(a) = %v", aNodes)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("x")
	if err := b.AddEdge(v, v); err == nil {
		t.Fatal("self-loop accepted without AllowSelfLoops")
	}
	b2 := NewBuilder(AllowSelfLoops())
	v2 := b2.AddNode("x")
	if err := b2.AddEdge(v2, v2); err != nil {
		t.Fatalf("self-loop rejected with AllowSelfLoops: %v", err)
	}
}

func TestEdgeToUnknownVertexRejected(t *testing.T) {
	b := NewBuilder()
	b.AddNode("x")
	if err := b.AddEdge(0, 5); err == nil {
		t.Fatal("edge to unknown vertex accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("edge from negative vertex accepted")
	}
}

func TestDedupe(t *testing.T) {
	g, err := FromEdges(
		[]string{"a", "b"},
		[][2]int64{{0, 1}, {0, 1}, {1, 0}},
		Undirected(), Dedupe(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Degree(0); got != 1 {
		t.Fatalf("Degree(0) after dedupe = %d, want 1", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDirectedBuild(t *testing.T) {
	g, err := FromEdges([]string{"a", "b"}, [][2]int64{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("default build should be directed")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 0 {
		t.Fatalf("directed degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
}

func TestStats(t *testing.T) {
	g := paperFigure1(t)
	s := g.ComputeStats()
	if s.Nodes != 5 || s.Edges != 14 || s.Labels != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDegree != 4 { // b1 and c1 have degree 4
		t.Fatalf("MaxDegree = %d, want 4", s.MaxDegree)
	}
	if s.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestAddNodesBulk(t *testing.T) {
	b := NewBuilder()
	la := b.Labels().Intern("a")
	lb := b.Labels().Intern("b")
	first := b.AddNodes(10, func(i int64) LabelID {
		if i%2 == 0 {
			return la
		}
		return lb
	})
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.Label(3) != lb {
		t.Fatalf("Label(3) = %d, want %d", g.Label(3), lb)
	}
}

// randomGraph builds a random undirected graph for property tests.
func randomGraph(rng *rand.Rand, n, m int, labels []string) *Graph {
	b := NewBuilder(Undirected(), Dedupe())
	for i := 0; i < n; i++ {
		b.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v)
	}
	return b.Build()
}

func TestPropertyValidateRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(4 * n)
		g := randomGraph(rng, n, m, []string{"a", "b", "c"})
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySymmetryRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 3*n, []string{"a", "b"})
		for v := int64(0); v < g.NumNodes(); v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				if !g.HasEdge(u, NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
