package graph

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelTableIntern(t *testing.T) {
	tab := NewLabelTable()
	a := tab.Intern("a")
	b := tab.Intern("b")
	if a == b {
		t.Fatal("distinct labels interned to same ID")
	}
	if got := tab.Intern("a"); got != a {
		t.Fatalf("re-intern a = %d, want %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.Name(a) != "a" || tab.Name(b) != "b" {
		t.Fatal("Name round trip failed")
	}
}

func TestLabelTableLookup(t *testing.T) {
	tab := NewLabelTable()
	tab.Intern("x")
	if _, ok := tab.Lookup("y"); ok {
		t.Fatal("Lookup found uninterned label")
	}
	if id, ok := tab.Lookup("x"); !ok || tab.Name(id) != "x" {
		t.Fatal("Lookup x failed")
	}
}

func TestLabelTableMustLookupPanics(t *testing.T) {
	tab := NewLabelTable()
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on unknown label did not panic")
		}
	}()
	tab.MustLookup("missing")
}

func TestLabelTableClone(t *testing.T) {
	tab := NewLabelTable()
	tab.Intern("a")
	c := tab.Clone()
	c.Intern("b")
	if tab.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: orig=%d clone=%d", tab.Len(), c.Len())
	}
}

func TestLabelTableSortedNames(t *testing.T) {
	tab := NewLabelTable()
	for _, s := range []string{"c", "a", "b"} {
		tab.Intern(s)
	}
	got := tab.SortedNames()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedNames = %v", got)
		}
	}
}

func TestLabelTableConcurrentIntern(t *testing.T) {
	tab := NewLabelTable()
	var wg sync.WaitGroup
	const workers = 8
	const labels = 100
	ids := make([][]LabelID, workers)
	for w := 0; w < workers; w++ {
		ids[w] = make([]LabelID, labels)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < labels; i++ {
				ids[w][i] = tab.Intern(fmt.Sprintf("label-%d", i))
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != labels {
		t.Fatalf("Len = %d, want %d", tab.Len(), labels)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < labels; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d interned label-%d to %d, worker 0 got %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
}
