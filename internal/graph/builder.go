package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates labeled vertices and edges and finalizes them into an
// immutable CSR Graph. The zero value is not usable; call NewBuilder.
//
// Vertices are identified by dense NodeIDs assigned by AddNode in call order;
// AddEdge accepts only IDs already returned by AddNode so that malformed
// input fails at insertion rather than at Build.
type Builder struct {
	labels     []LabelID
	srcs, dsts []NodeID
	table      *LabelTable
	undirected bool
	dedupe     bool
	allowLoops bool
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// Undirected makes Build symmetrize every edge (store it in both adjacency
// lists). All experiments in the paper reproduction use undirected graphs,
// matching the paper's example semantics.
func Undirected() BuilderOption { return func(b *Builder) { b.undirected = true } }

// Dedupe makes Build drop parallel edges (after symmetrization).
func Dedupe() BuilderOption { return func(b *Builder) { b.dedupe = true } }

// AllowSelfLoops permits v->v edges, which are otherwise rejected.
func AllowSelfLoops() BuilderOption { return func(b *Builder) { b.allowLoops = true } }

// WithLabelTable shares an existing label table (e.g. so a query and a data
// graph intern labels identically).
func WithLabelTable(t *LabelTable) BuilderOption { return func(b *Builder) { b.table = t } }

// NewBuilder returns a Builder with the given options applied.
func NewBuilder(opts ...BuilderOption) *Builder {
	b := &Builder{}
	for _, o := range opts {
		o(b)
	}
	if b.table == nil {
		b.table = NewLabelTable()
	}
	return b
}

// AddNode appends a vertex with the given label string and returns its ID.
func (b *Builder) AddNode(label string) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, b.table.Intern(label))
	return id
}

// AddNodeLabelID appends a vertex with an already-interned label.
func (b *Builder) AddNodeLabelID(label LabelID) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, label)
	return id
}

// AddNodes appends n vertices labeled by the callback and returns the first
// assigned ID. Bulk path for generators.
func (b *Builder) AddNodes(n int64, label func(i int64) LabelID) NodeID {
	first := NodeID(len(b.labels))
	for i := int64(0); i < n; i++ {
		b.labels = append(b.labels, label(i))
	}
	return first
}

// NumNodes returns the number of vertices added so far.
func (b *Builder) NumNodes() int64 { return int64(len(b.labels)) }

// NumEdges returns the number of AddEdge calls so far.
func (b *Builder) NumEdges() int64 { return int64(len(b.srcs)) }

// Labels returns the builder's label table.
func (b *Builder) Labels() *LabelTable { return b.table }

// AddEdge records an edge from u to v. Both endpoints must already exist.
func (b *Builder) AddEdge(u, v NodeID) error {
	n := NodeID(len(b.labels))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) references unknown vertex (have %d vertices)", u, v, n)
	}
	if u == v && !b.allowLoops {
		return fmt.Errorf("graph: self-loop (%d,%d) rejected; use AllowSelfLoops", u, v)
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	return nil
}

// MustAddEdge is AddEdge that panics on error; for generators whose inputs
// are correct by construction.
func (b *Builder) MustAddEdge(u, v NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build finalizes the accumulated vertices and edges into an immutable
// Graph. The Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	n := int64(len(b.labels))
	m := int64(len(b.srcs))
	if b.undirected {
		m *= 2
	}

	// Counting sort of edges into CSR: first pass degrees, second pass
	// placement. This is O(n+m) and allocation-tight, which matters for the
	// multi-million-node graphs the load benchmarks build.
	offsets := make([]int64, n+1)
	for i := range b.srcs {
		offsets[b.srcs[i]+1]++
		if b.undirected {
			offsets[b.dsts[i]+1]++
		}
	}
	for v := int64(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]NodeID, m)
	cursor := make([]int64, n)
	for i := range b.srcs {
		u, v := b.srcs[i], b.dsts[i]
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		if b.undirected {
			adj[offsets[v]+cursor[v]] = u
			cursor[v]++
		}
	}
	b.srcs, b.dsts = nil, nil

	g := &Graph{
		offsets:  offsets,
		adj:      adj,
		labels:   b.labels,
		table:    b.table,
		directed: !b.undirected,
	}
	for v := int64(0); v < n; v++ {
		ns := g.Neighbors(NodeID(v))
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	if b.dedupe {
		g = dedupeAdjacency(g)
	}
	return g
}

// dedupeAdjacency rebuilds the CSR arrays with consecutive duplicate
// neighbors removed (adjacency is already sorted).
func dedupeAdjacency(g *Graph) *Graph {
	n := g.NumNodes()
	offsets := make([]int64, n+1)
	adj := make([]NodeID, 0, len(g.adj))
	for v := int64(0); v < n; v++ {
		ns := g.Neighbors(NodeID(v))
		for i, u := range ns {
			if i > 0 && ns[i-1] == u {
				continue
			}
			adj = append(adj, u)
		}
		offsets[v+1] = int64(len(adj))
	}
	return &Graph{offsets: offsets, adj: adj, labels: g.labels, table: g.table, directed: g.directed}
}

// FromEdges is a convenience constructor: labels[i] names vertex i and each
// edges element is a [2]int64 endpoint pair. Used heavily by tests.
func FromEdges(labels []string, edges [][2]int64, opts ...BuilderOption) (*Graph, error) {
	b := NewBuilder(opts...)
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(NodeID(e[0]), NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(labels []string, edges [][2]int64, opts ...BuilderOption) *Graph {
	g, err := FromEdges(labels, edges, opts...)
	if err != nil {
		panic(err)
	}
	return g
}
