package graph

import (
	"fmt"
	"sort"
	"sync"
)

// LabelTable interns label strings to dense LabelIDs. It is safe for
// concurrent use; interning is cheap enough to sit on graph-build hot paths.
//
// The zero value is not usable; call NewLabelTable.
type LabelTable struct {
	mu    sync.RWMutex
	byStr map[string]LabelID
	names []string
}

// NewLabelTable returns an empty table.
func NewLabelTable() *LabelTable {
	return &LabelTable{byStr: make(map[string]LabelID)}
}

// Intern returns the LabelID for name, assigning the next dense ID if the
// label has not been seen before.
func (t *LabelTable) Intern(name string) LabelID {
	t.mu.RLock()
	id, ok := t.byStr[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.byStr[name]; ok {
		return id
	}
	id = LabelID(len(t.names))
	t.byStr[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the LabelID for name and whether it exists, without
// interning.
func (t *LabelTable) Lookup(name string) (LabelID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byStr[name]
	return id, ok
}

// Name returns the string for id. It panics on an out-of-range ID, matching
// slice-index semantics.
func (t *LabelTable) Name(id LabelID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.names[id]
}

// Len returns the number of interned labels.
func (t *LabelTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Names returns a copy of all interned label strings indexed by LabelID.
func (t *LabelTable) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Clone returns an independent copy of the table.
func (t *LabelTable) Clone() *LabelTable {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &LabelTable{
		byStr: make(map[string]LabelID, len(t.byStr)),
		names: make([]string, len(t.names)),
	}
	copy(c.names, t.names)
	for k, v := range t.byStr {
		c.byStr[k] = v
	}
	return c
}

// MustLookup is Lookup that panics with a descriptive message when the label
// is unknown. Convenient in examples and tests.
func (t *LabelTable) MustLookup(name string) LabelID {
	id, ok := t.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("graph: unknown label %q", name))
	}
	return id
}

// SortedNames returns the interned labels in lexicographic order. Used by
// deterministic serializers and test output.
func (t *LabelTable) SortedNames() []string {
	names := t.Names()
	sort.Strings(names)
	return names
}
