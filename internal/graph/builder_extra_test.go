package graph

import (
	"bytes"
	"testing"
)

func TestWithLabelTableShares(t *testing.T) {
	shared := NewLabelTable()
	shared.Intern("a")
	b1 := NewBuilder(WithLabelTable(shared))
	b2 := NewBuilder(WithLabelTable(shared))
	b1.AddNode("b")
	b2.AddNode("c")
	if shared.Len() != 3 {
		t.Fatalf("shared table has %d labels, want 3", shared.Len())
	}
	if b1.Labels() != shared || b2.Labels() != shared {
		t.Fatal("builders did not share the table")
	}
}

func TestAddNodeLabelID(t *testing.T) {
	b := NewBuilder()
	l := b.Labels().Intern("x")
	id := b.AddNodeLabelID(l)
	g := b.Build()
	if g.Label(id) != l || g.LabelString(id) != "x" {
		t.Fatal("AddNodeLabelID label lost")
	}
}

func TestBuilderCounters(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a")
	b.AddNode("b")
	b.MustAddEdge(0, 1)
	if b.NumNodes() != 2 || b.NumEdges() != 1 {
		t.Fatalf("counters = (%d,%d)", b.NumNodes(), b.NumEdges())
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge did not panic on bad edge")
		}
	}()
	b.MustAddEdge(0, 9)
}

func TestMustFromEdges(t *testing.T) {
	g := MustFromEdges([]string{"a", "b"}, [][2]int64{{0, 1}}, Undirected())
	if g.NumNodes() != 2 {
		t.Fatal("MustFromEdges failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromEdges did not panic on bad edge")
		}
	}()
	MustFromEdges([]string{"a"}, [][2]int64{{0, 5}})
}

func TestHasNode(t *testing.T) {
	g := MustFromEdges([]string{"a", "b"}, [][2]int64{{0, 1}})
	if !g.HasNode(0) || !g.HasNode(1) {
		t.Fatal("HasNode false for valid vertex")
	}
	if g.HasNode(-1) || g.HasNode(2) {
		t.Fatal("HasNode true for invalid vertex")
	}
}

func TestAvgDegreeEmptyGraph(t *testing.T) {
	g := NewBuilder().Build()
	if g.AvgDegree() != 0 {
		t.Fatal("empty graph AvgDegree != 0")
	}
}

func TestLabelStringNoLabel(t *testing.T) {
	b := NewBuilder()
	b.AddNodeLabelID(NoLabel)
	g := b.Build()
	if g.LabelString(0) != "" {
		t.Fatalf("LabelString for NoLabel = %q", g.LabelString(0))
	}
}

func TestWriteTextDirected(t *testing.T) {
	// Directed graphs emit every stored edge (no u<v suppression).
	g := MustFromEdges([]string{"a", "b"}, [][2]int64{{1, 0}})
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("e 1 0")) {
		t.Fatalf("directed edge lost:\n%s", buf.String())
	}
}
