// Package graph provides the labeled-graph substrate used throughout the
// repository: a compact CSR (compressed sparse row) in-memory representation,
// an incremental builder, a label table interning label strings, and text and
// binary serialization.
//
// The representation is tuned for the access pattern of graph exploration:
// Neighbors(v) returns a shared sub-slice of one contiguous adjacency arena,
// so a traversal touches two flat arrays and no per-node heap objects. This
// mirrors the "flat memory blob instead of runtime objects on heap" design of
// the Trinity memory trunk described in §2.2 of the paper.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex of a data graph. IDs are dense in [0, N) for
// graphs produced by Builder, which is what the partitioner and the memory
// cloud assume.
type NodeID int64

// InvalidNode is returned by lookups that find no vertex.
const InvalidNode NodeID = -1

// LabelID is an interned vertex label. The zero value is the first label
// interned into a LabelTable; use NoLabel for "absent".
type LabelID uint32

// NoLabel marks a vertex without a label.
const NoLabel LabelID = ^LabelID(0)

// Graph is an immutable vertex-labeled graph in CSR form. Construct one with
// a Builder; the zero value is an empty graph ready for read-only use.
//
// Adjacency lists are sorted by neighbor ID, enabling binary-search edge
// probes (HasEdge) and deterministic iteration.
type Graph struct {
	offsets []int64  // len = n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []NodeID // concatenated sorted adjacency arena
	labels  []LabelID
	table   *LabelTable
	// directed records the builder's mode. Matching semantics in this
	// repository treat adjacency as the neighbor relation, so undirected
	// graphs store each edge twice.
	directed bool
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int64 { return int64(len(g.labels)) }

// NumEdges returns the number of stored (directed) adjacency entries. For a
// graph built with Undirected(true) this is twice the undirected edge count.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) }

// Directed reports whether the graph was built in directed mode.
func (g *Graph) Directed() bool { return g.directed }

// Labels returns the label table of the graph. It is nil only for the zero
// Graph.
func (g *Graph) Labels() *LabelTable { return g.table }

// Label returns the label of vertex v.
func (g *Graph) Label(v NodeID) LabelID { return g.labels[v] }

// LabelString returns the string form of vertex v's label, or "" if the
// vertex is unlabeled.
func (g *Graph) LabelString(v NodeID) string {
	l := g.labels[v]
	if l == NoLabel || g.table == nil {
		return ""
	}
	return g.table.Name(l)
}

// Neighbors returns the sorted adjacency list of v as a shared sub-slice of
// the adjacency arena. Callers must not modify it.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// HasEdge reports whether v has u in its adjacency list, by binary search.
func (g *Graph) HasEdge(v, u NodeID) bool {
	ns := g.Neighbors(v)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= u })
	return i < len(ns) && ns[i] == u
}

// HasNode reports whether v is a valid vertex ID of g.
func (g *Graph) HasNode(v NodeID) bool {
	return v >= 0 && int64(v) < g.NumNodes()
}

// AvgDegree returns the mean adjacency length, 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(len(g.labels))
}

// MaxDegree returns the largest adjacency length in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int64(0); v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// LabelFrequencies returns, for each label ID, the number of vertices that
// carry it. The slice is indexed by LabelID and has length equal to the
// number of interned labels.
func (g *Graph) LabelFrequencies() []int64 {
	n := 0
	if g.table != nil {
		n = g.table.Len()
	}
	freq := make([]int64, n)
	for _, l := range g.labels {
		if l != NoLabel {
			freq[l]++
		}
	}
	return freq
}

// NodesWithLabel returns all vertex IDs carrying label l, in ascending
// order. It is a linear scan; the memory cloud keeps proper per-partition
// string indexes for query processing, this helper exists for tooling and
// tests.
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	var out []NodeID
	for v, lab := range g.labels {
		if lab == l {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Validate checks structural invariants (monotone offsets, sorted adjacency,
// neighbor IDs in range) and returns a descriptive error on the first
// violation. Intended for tests and data-ingestion tools.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if int64(len(g.offsets)) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		ns := g.Neighbors(NodeID(v))
		for i, u := range ns {
			if u < 0 || u >= NodeID(n) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && ns[i-1] > u {
				return fmt.Errorf("graph: adjacency of vertex %d not sorted", v)
			}
		}
	}
	return nil
}

// Stats summarizes a graph for logging and experiment reports.
type Stats struct {
	Nodes     int64
	Edges     int64 // stored adjacency entries
	Labels    int
	AvgDegree float64
	MaxDegree int
}

// ComputeStats gathers Stats in one pass.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	if g.table != nil {
		s.Labels = g.table.Len()
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d labels=%d avg_degree=%.2f max_degree=%d",
		s.Nodes, s.Edges, s.Labels, s.AvgDegree, s.MaxDegree)
}
