package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format
//
// A human-editable graph file is line-oriented:
//
//	# comment
//	v <id> <label>
//	e <src> <dst>
//
// Vertex IDs must be dense 0..n-1 and each vertex declared before use by an
// edge. WriteText emits vertices in ID order followed by edges.

// ReadText parses the text graph format from r.
func ReadText(r io.Reader, opts ...BuilderOption) (*Graph, error) {
	b := NewBuilder(opts...)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'v <id> <label>', got %q", lineNo, line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id: %v", lineNo, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: vertex id %d out of order (want %d)", lineNo, id, b.NumNodes())
			}
			b.AddNode(fields[2])
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e <src> <dst>', got %q", lineNo, line)
			}
			u, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
			}
			if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	return b.Build(), nil
}

// WriteText writes g in the text format. Undirected graphs store each edge
// twice; WriteText emits each undirected edge once (u < v) so a round-trip
// through ReadText with Undirected() reproduces the graph.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumNodes()
	for v := int64(0); v < n; v++ {
		if _, err := fmt.Fprintf(bw, "v %d %s\n", v, g.LabelString(NodeID(v))); err != nil {
			return err
		}
	}
	for v := int64(0); v < n; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			if !g.directed && u < NodeID(v) {
				continue // emitted from the other side
			}
			if _, err := fmt.Fprintf(bw, "e %d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary format
//
// The binary format is a little-endian dump of the CSR arrays plus the label
// table, prefixed by a magic and version:
//
//	magic "STWG" | version u32 | flags u32 | n u64 | m u64 | labelCount u32
//	label strings (u32 len + bytes) ...
//	labels  []u32 (n entries)
//	offsets []u64 (n+1 entries)
//	adj     []u64 (m entries)

const (
	binaryMagic   = "STWG"
	binaryVersion = 1
	flagDirected  = 1 << 0
)

// WriteBinary serializes g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.directed {
		flags |= flagDirected
	}
	names := g.table.Names()
	hdr := []uint64{uint64(binaryVersion), uint64(flags), uint64(g.NumNodes()), uint64(g.NumEdges()), uint64(len(names))}
	var buf [8]byte
	writeU32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], x)
		_, err := bw.Write(buf[:4])
		return err
	}
	writeU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(buf[:8], x)
		_, err := bw.Write(buf[:8])
		return err
	}
	if err := writeU32(uint32(hdr[0])); err != nil {
		return err
	}
	if err := writeU32(uint32(hdr[1])); err != nil {
		return err
	}
	if err := writeU64(hdr[2]); err != nil {
		return err
	}
	if err := writeU64(hdr[3]); err != nil {
		return err
	}
	if err := writeU32(uint32(hdr[4])); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeU32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	for _, l := range g.labels {
		if err := writeU32(uint32(l)); err != nil {
			return err
		}
	}
	for _, o := range g.offsets {
		if err := writeU64(uint64(o)); err != nil {
			return err
		}
	}
	for _, a := range g.adj {
		if err := writeU64(uint64(a)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var b4 [4]byte
	var b8 [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b4[:]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	flags, err := readU32()
	if err != nil {
		return nil, err
	}
	n, err := readU64()
	if err != nil {
		return nil, err
	}
	m, err := readU64()
	if err != nil {
		return nil, err
	}
	labelCount, err := readU32()
	if err != nil {
		return nil, err
	}
	table := NewLabelTable()
	for i := uint32(0); i < labelCount; i++ {
		sz, err := readU32()
		if err != nil {
			return nil, err
		}
		name := make([]byte, sz)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		table.Intern(string(name))
	}
	labels := make([]LabelID, n)
	for i := range labels {
		x, err := readU32()
		if err != nil {
			return nil, err
		}
		labels[i] = LabelID(x)
	}
	offsets := make([]int64, n+1)
	for i := range offsets {
		x, err := readU64()
		if err != nil {
			return nil, err
		}
		offsets[i] = int64(x)
	}
	adj := make([]NodeID, m)
	for i := range adj {
		x, err := readU64()
		if err != nil {
			return nil, err
		}
		adj[i] = NodeID(x)
	}
	g := &Graph{offsets: offsets, adj: adj, labels: labels, table: table, directed: flags&flagDirected != 0}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}
