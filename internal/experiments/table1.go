package experiments

import (
	"errors"
	"fmt"
	"time"

	"stwig/internal/baseline"
	"stwig/internal/core"
	"stwig/internal/stats"
	"stwig/internal/workload"
)

// RunTable1 reproduces Table 1's empirical columns — index size, index
// build time, and query time — for each method family on one graph:
//
//	group 1 (no index):            Ullmann, VF2
//	group 2 (edge index):          EdgeJoin
//	group 4 (neighborhood index):  Signature r=1, r=2
//	this paper:                    STwig over the memory cloud
//
// The paper's point is the scaling *shape*: the STwig string index is the
// only linear-and-tiny one, signature indexes blow up with radius, and the
// no-index searches are orders of magnitude slower per query.
func RunTable1(cfg Config) (*stats.Table, error) {
	nodes := cfg.scaled(30_000)
	g, err := workload.SynthPatents(workload.PatentsParams{Nodes: nodes, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	// Query workload: DFS queries (cut out of the data graph, so every
	// query has matches and every method does real work), small enough
	// that the slow baselines finish. The budget mirrors the paper's
	// 1024-match cutoff.
	queries, err := dfsQuerySet(g, 4, cfg)
	if err != nil {
		return nil, err
	}
	limit := cfg.Budget
	if limit == 0 {
		limit = 1024
	}

	tab := stats.NewTable("method", "index_size", "index_time", "avg_query_time", "note")

	// Group 1: Ullmann / VF2 — no index. Run on a capped query count; these
	// are the ">1000s on toy graphs" rows of Table 1.
	slowQueries := queries
	if len(slowQueries) > 5 {
		slowQueries = slowQueries[:5]
	}
	for _, m := range []struct {
		name string
		run  func(q *core.Query) int
	}{
		{"Ullmann", func(q *core.Query) int { return len(baseline.Ullmann(g, q, limit)) }},
		{"VF2", func(q *core.Query) int { return len(baseline.VF2(g, q, limit)) }},
	} {
		var total time.Duration
		for _, q := range slowQueries {
			start := time.Now()
			m.run(q)
			total += time.Since(start)
		}
		tab.AddRow(m.name, "-", "-", total/time.Duration(len(slowQueries)), "no index (group 1)")
	}

	// Group 2: edge index + multiway joins.
	start := time.Now()
	eix := baseline.BuildEdgeIndex(g)
	eixTime := time.Since(start)
	var eixTotal time.Duration
	blowups := 0
	for _, q := range queries {
		qs := time.Now()
		_, err := eix.Match(q, limit, 2_000_000)
		eixTotal += time.Since(qs)
		var blow *baseline.ErrIntermediateBlowup
		if errors.As(err, &blow) {
			blowups++
		} else if err != nil {
			return nil, err
		}
	}
	note := "edge index (group 2)"
	if blowups > 0 {
		note += " — intermediate blowups on some queries"
	}
	tab.AddRow("EdgeJoin", stats.HumanBytes(eix.MemoryBytes()), eixTime,
		eixTotal/time.Duration(len(queries)), note)

	// Group 4: neighborhood signature indexes.
	for _, r := range []int{1, 2} {
		start := time.Now()
		six := baseline.BuildSignatureIndex(g, r)
		buildTime := time.Since(start)
		var sigTotal time.Duration
		for _, q := range queries {
			qs := time.Now()
			six.Match(q, limit)
			sigTotal += time.Since(qs)
		}
		tab.AddRow(
			sprintfRadius(r),
			stats.HumanBytes(six.MemoryBytes()),
			buildTime,
			sigTotal/time.Duration(len(queries)),
			sprintfVisits(six.BuildVisits(), g.NumNodes()),
		)
	}

	// This paper: STwig over the memory cloud. The only index is the
	// per-machine string index, built during graph load.
	cluster, loadTime, err := loadCluster(g, cfg.Machines)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(cluster, core.Options{MatchBudget: limit, Seed: cfg.Seed})
	avg, _, err := avgQueryTime(eng, queries)
	if err != nil {
		return nil, err
	}
	tab.AddRow("STwig (this paper)", stats.HumanBytes(cluster.StringIndexBytes()), loadTime, avg,
		sprintfMachines(cfg.Machines))
	return tab, nil
}

func sprintfRadius(r int) string {
	return fmt.Sprintf("Signature r=%d", r)
}

func sprintfVisits(visits, nodes int64) string {
	return fmt.Sprintf("neighborhood index (group 4), build visits=%d for n=%d", visits, nodes)
}

func sprintfMachines(k int) string {
	return fmt.Sprintf("string index only; %d machines", k)
}
