// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated memory cloud, at configurable scale.
// Each Run* function returns a stats.Table whose rows mirror the data
// series of the corresponding paper exhibit; cmd/experiments prints them
// and EXPERIMENTS.md records a captured run against the paper's findings.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/memcloud"
	"stwig/internal/workload"
)

// Config scales the experiment suite. The paper's absolute sizes (up to
// 4.3G nodes on 12 physical machines) are scaled down so the whole suite
// runs on one development machine; Scale multiplies every graph size.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the CI-friendly default
	// documented per experiment.
	Scale float64
	// Machines is the simulated cluster size (paper: 8 for real data,
	// 12 for synthetic).
	Machines int
	// QueriesPerPoint is the number of queries averaged per configuration
	// (paper: 100).
	QueriesPerPoint int
	// Budget is the per-query match budget (paper: stops at 1024 matches).
	Budget int
	// Seed fixes all generation.
	Seed int64
}

// Defaults returns the CI-friendly configuration.
func Defaults() Config {
	return Config{Scale: 1.0, Machines: 8, QueriesPerPoint: 20, Budget: 1024, Seed: 42}
}

func (c Config) scaled(n int64) int64 {
	v := int64(float64(n) * c.Scale)
	if v < 64 {
		v = 64
	}
	return v
}

// loadCluster builds a cluster of k machines holding g.
func loadCluster(g *graph.Graph, k int) (*memcloud.Cluster, time.Duration, error) {
	c, err := memcloud.NewCluster(memcloud.Config{Machines: k})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := c.LoadGraph(g); err != nil {
		return nil, 0, err
	}
	return c, time.Since(start), nil
}

// avgQueryTime runs each query once and returns the mean wall time and the
// mean result count.
func avgQueryTime(eng *core.Engine, queries []*core.Query) (time.Duration, float64, error) {
	if len(queries) == 0 {
		return 0, 0, fmt.Errorf("experiments: empty query set")
	}
	var total time.Duration
	var results int64
	for _, q := range queries {
		start := time.Now()
		res, err := eng.Match(q)
		if err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		results += int64(len(res.Matches))
	}
	return total / time.Duration(len(queries)), float64(results) / float64(len(queries)), nil
}

// dfsQuerySet generates cfg.QueriesPerPoint DFS queries of n nodes.
func dfsQuerySet(g *graph.Graph, n int, cfg Config) ([]*core.Query, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return workload.QuerySet(cfg.QueriesPerPoint, func() (*core.Query, error) {
		return workload.DFSQuery(g, n, rng)
	})
}

// randomQuerySet generates cfg.QueriesPerPoint random queries with n nodes
// and e edges over the graph's label alphabet.
func randomQuerySet(g *graph.Graph, n, e int, cfg Config) ([]*core.Query, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := workload.GraphLabels(g)
	return workload.QuerySet(cfg.QueriesPerPoint, func() (*core.Query, error) {
		return workload.RandomQuery(n, e, labels, rng)
	})
}
