package experiments

import (
	"fmt"
	"sort"

	"stwig/internal/stats"
)

// Experiment names one runnable exhibit reproduction.
type Experiment struct {
	// Name is the CLI key, e.g. "table1", "fig9a".
	Name string
	// Paper identifies the exhibit in the paper.
	Paper string
	// Shape is the expected qualitative result.
	Shape string
	// Run executes the experiment.
	Run func(Config) (*stats.Table, error)
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1", "STwig index linear & tiny; signature indexes blow up with radius; no-index search orders of magnitude slower", RunTable1},
		{"table2", "Table 2", "load time ≈ linear in node count", RunTable2},
		{"fig8a", "Figure 8(a)", "DFS query cost rises to ~7 nodes then flattens/dips", RunFig8a},
		{"fig8b", "Figure 8(b)", "random query cost ≈ linear in node count", RunFig8b},
		{"fig8c", "Figure 8(c)", "cost flat in query edge count", RunFig8c},
		{"fig9a", "Figure 9(a)", "DFS speed-up grows sub-linearly with machines", RunFig9a},
		{"fig9b", "Figure 9(b)", "random-query speed-up smaller than DFS", RunFig9b},
		{"fig10a", "Figure 10(a)", "flat vs node count at fixed degree", RunFig10a},
		{"fig10b", "Figure 10(b)", "grows with node count at fixed density", RunFig10b},
		{"fig10c", "Figure 10(c)", "sub-linear growth with degree; random hit harder", RunFig10c},
		{"fig10d", "Figure 10(d)", "decreasing with label density", RunFig10d},
		{"ablations", "(DESIGN.md §6)", "each optimization strictly reduces time and/or bytes", RunAblations},
		{"throughput", "(§8 future work)", "throughput scales with available cores, then saturates (flat on a 1-core host)", RunThroughput},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}
