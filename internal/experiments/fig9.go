package experiments

import (
	"time"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/memcloud"
	"stwig/internal/stats"
	"stwig/internal/workload"
)

// runSpeedup measures modeled cluster query time as the machine count grows
// from 1 to cfg.Machines over a fixed graph and query set — Figures
// 9(a)/9(b). Paper shape: time falls with machines but sub-linearly ("more
// network traffic and synchronization cost will be incurred with more
// machines"), and DFS queries (larger result sets, more per-machine work)
// speed up better than random queries.
//
// Measurement method: the simulator runs every "machine" in one process,
// so on hosts without k spare cores, goroutine wall-clock cannot exhibit
// parallel speed-up — only coordination overhead. The engine's
// SimulateParallel mode therefore times each machine's phase work
// sequentially and reports the modeled cluster wall time (per-phase maxima
// + serial proxy work + a GigE-like network model). The same code paths
// execute; only the clock is attributed per machine.
func runSpeedup(cfg Config, g *graph.Graph, mkQueries func() ([]*core.Query, error)) (*stats.Table, error) {
	queries, err := mkQueries()
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("machines", "modeled_query_time", "speedup", "machine_busy", "net_time", "net_bytes")
	var base time.Duration
	for k := 1; k <= cfg.Machines; k++ {
		cluster, err := memcloud.NewCluster(memcloud.Config{Machines: k})
		if err != nil {
			return nil, err
		}
		if err := cluster.LoadGraph(g); err != nil {
			return nil, err
		}
		// The match budget is disabled here: at simulator scale a 1024-match
		// cutoff makes queries so cheap that fixed exchange traffic hides
		// the compute speed-up. The paper's full-scale runs are in the
		// compute-dominated regime (its WordNet DFS queries take 4–22 s
		// even with the cutoff); removing the budget puts the simulator in
		// the same regime.
		eng := core.NewEngine(cluster, core.Options{
			Seed:             cfg.Seed,
			SimulateParallel: true,
		})
		cluster.ResetNetStats()
		var modeled, busy, netTime time.Duration
		for _, q := range queries {
			res, err := eng.Match(q)
			if err != nil {
				return nil, err
			}
			modeled += res.Stats.ModeledParallelTime
			busy += res.Stats.ModeledMachineTime
			netTime += res.Stats.ModeledNetTime
		}
		n := time.Duration(len(queries))
		modeled, busy, netTime = modeled/n, busy/n, netTime/n
		if k == 1 {
			base = modeled
		}
		tab.AddRow(k, modeled, float64(base)/float64(modeled), busy, netTime, cluster.NetStats().Bytes)
	}
	return tab, nil
}

// RunFig9a reproduces Figure 9(a): speed-up of DFS queries with machine
// count.
func RunFig9a(cfg Config) (*stats.Table, error) {
	g, err := workload.SynthWordNet(workload.WordNetParams{
		Nodes: cfg.scaled(20_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return runSpeedup(cfg, g, func() ([]*core.Query, error) {
		return dfsQuerySet(g, 8, cfg)
	})
}

// RunFig9b reproduces Figure 9(b): speed-up of random queries with machine
// count. Random queries have smaller result sets and lighter per-machine
// work, so the paper's speed-up here is flatter than Figure 9(a)'s.
func RunFig9b(cfg Config) (*stats.Table, error) {
	g, err := workload.SynthWordNet(workload.WordNetParams{
		Nodes: cfg.scaled(20_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return runSpeedup(cfg, g, func() ([]*core.Query, error) {
		return randomQuerySet(g, 6, 9, cfg)
	})
}
