package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"stwig/internal/core"
	"stwig/internal/stats"
	"stwig/internal/workload"
)

// RunThroughput measures concurrent query throughput — one of the paper's
// explicitly named future-work questions (§8: "verify the system speedup,
// query throughput and response time bounds"). A pool of client goroutines
// issues queries against one shared engine for a fixed wall-clock window;
// the table reports queries/second and mean latency per concurrency level.
func RunThroughput(cfg Config) (*stats.Table, error) {
	g, err := workload.SynthPatents(workload.PatentsParams{
		Nodes: cfg.scaled(30_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cluster, _, err := loadCluster(g, cfg.Machines)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(cluster, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	queries, err := dfsQuerySet(g, 6, cfg)
	if err != nil {
		return nil, err
	}

	const window = 400 * time.Millisecond
	tab := stats.NewTable("clients", "queries_per_sec", "mean_latency", "plan_hit_rate")
	for _, clients := range []int{1, 2, 4, 8} {
		cacheBefore := eng.PlanCacheStats()
		var completed atomic.Int64
		var totalLatency atomic.Int64
		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		var firstErr atomic.Value
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				i := c
				for time.Now().Before(deadline) {
					q := queries[i%len(queries)]
					i++
					start := time.Now()
					if _, err := eng.Match(q); err != nil {
						firstErr.Store(err)
						return
					}
					totalLatency.Add(int64(time.Since(start)))
					completed.Add(1)
				}
			}(c)
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, err
		}
		n := completed.Load()
		if n == 0 {
			n = 1
		}
		qps := float64(n) / window.Seconds()
		// Plan-cache effectiveness over this concurrency level's window:
		// after warmup every repeated query should reuse its cached plan.
		cacheAfter := eng.PlanCacheStats()
		hits := cacheAfter.Hits - cacheBefore.Hits
		misses := cacheAfter.Misses - cacheBefore.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		tab.AddRow(clients, qps, time.Duration(totalLatency.Load()/n), hitRate)
	}
	return tab, nil
}
