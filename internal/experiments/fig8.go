package experiments

import (
	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/stats"
	"stwig/internal/workload"
)

// realDataPair builds the two "real data" stand-ins of §6.2 at the
// configured scale: Patents-like (many labels, selective) and WordNet-like
// (5 labels, unselective).
func realDataPair(cfg Config) (patents, wordnet *graph.Graph, err error) {
	patents, err = workload.SynthPatents(workload.PatentsParams{
		Nodes: cfg.scaled(40_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	wordnet, err = workload.SynthWordNet(workload.WordNetParams{
		Nodes: cfg.scaled(20_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return patents, wordnet, nil
}

// RunFig8a reproduces Figure 8(a): run time vs query node count for DFS
// queries (3–10 nodes) on both real-data stand-ins. Paper shape: cost
// rises sharply around 7 nodes, then flattens or dips at 9–10 because the
// exploration strategy shrinks intermediate results on larger queries.
func RunFig8a(cfg Config) (*stats.Table, error) {
	patents, wordnet, err := realDataPair(cfg)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("query_nodes", "patents_avg", "wordnet_avg")
	pc, _, err := loadCluster(patents, cfg.Machines)
	if err != nil {
		return nil, err
	}
	wc, _, err := loadCluster(wordnet, cfg.Machines)
	if err != nil {
		return nil, err
	}
	pEng := core.NewEngine(pc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	wEng := core.NewEngine(wc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	for n := 3; n <= 10; n++ {
		pq, err := dfsQuerySet(patents, n, cfg)
		if err != nil {
			return nil, err
		}
		wq, err := dfsQuerySet(wordnet, n, cfg)
		if err != nil {
			return nil, err
		}
		pAvg, _, err := avgQueryTime(pEng, pq)
		if err != nil {
			return nil, err
		}
		wAvg, _, err := avgQueryTime(wEng, wq)
		if err != nil {
			return nil, err
		}
		tab.AddRow(n, pAvg, wAvg)
	}
	return tab, nil
}

// RunFig8b reproduces Figure 8(b): run time vs query node count for random
// queries (N = 5…15, E = 2N). Paper shape: roughly linear in N, because
// random queries have small result sets and each extra STwig adds a nearly
// constant amount of work.
func RunFig8b(cfg Config) (*stats.Table, error) {
	patents, wordnet, err := realDataPair(cfg)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("query_nodes", "patents_avg", "wordnet_avg")
	pc, _, err := loadCluster(patents, cfg.Machines)
	if err != nil {
		return nil, err
	}
	wc, _, err := loadCluster(wordnet, cfg.Machines)
	if err != nil {
		return nil, err
	}
	pEng := core.NewEngine(pc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	wEng := core.NewEngine(wc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	for n := 5; n <= 15; n += 2 {
		pq, err := randomQuerySet(patents, n, 2*n, cfg)
		if err != nil {
			return nil, err
		}
		wq, err := randomQuerySet(wordnet, n, 2*n, cfg)
		if err != nil {
			return nil, err
		}
		pAvg, _, err := avgQueryTime(pEng, pq)
		if err != nil {
			return nil, err
		}
		wAvg, _, err := avgQueryTime(wEng, wq)
		if err != nil {
			return nil, err
		}
		tab.AddRow(n, pAvg, wAvg)
	}
	return tab, nil
}

// RunFig8c reproduces Figure 8(c): run time vs query edge count (E=10…20
// at N=10). Paper shape: flat — the decomposition's STwig count tracks the
// vertex cover, not the edge count, so extra edges cost almost nothing.
func RunFig8c(cfg Config) (*stats.Table, error) {
	patents, wordnet, err := realDataPair(cfg)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("query_edges", "patents_avg", "wordnet_avg")
	pc, _, err := loadCluster(patents, cfg.Machines)
	if err != nil {
		return nil, err
	}
	wc, _, err := loadCluster(wordnet, cfg.Machines)
	if err != nil {
		return nil, err
	}
	pEng := core.NewEngine(pc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	wEng := core.NewEngine(wc, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed})
	for e := 10; e <= 20; e += 2 {
		pq, err := randomQuerySet(patents, 10, e, cfg)
		if err != nil {
			return nil, err
		}
		wq, err := randomQuerySet(wordnet, 10, e, cfg)
		if err != nil {
			return nil, err
		}
		pAvg, _, err := avgQueryTime(pEng, pq)
		if err != nil {
			return nil, err
		}
		wAvg, _, err := avgQueryTime(wEng, wq)
		if err != nil {
			return nil, err
		}
		tab.AddRow(e, pAvg, wAvg)
	}
	return tab, nil
}
