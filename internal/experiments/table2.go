package experiments

import (
	"stwig/internal/rmat"
	"stwig/internal/stats"
)

// RunTable2 reproduces Table 2: graph loading time as the node count grows.
// The paper loads R-MAT graphs of 1M…4096M nodes in 2s…689s (roughly
// linear); here node counts are 2^13…2^19 by default (Scale raises them)
// and the shape to verify is load time growing ≈ linearly with node count.
func RunTable2(cfg Config) (*stats.Table, error) {
	tab := stats.NewTable("nodes", "edges", "load_time", "ns_per_node")
	for _, scalePow := range []int{13, 14, 15, 16, 17, 18, 19} {
		g, err := rmat.Generate(rmat.Params{
			Scale:     scaleForNodes(cfg.scaled(1 << scalePow)),
			AvgDegree: 16,
			NumLabels: 64,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		_, loadTime, err := loadCluster(g, cfg.Machines)
		if err != nil {
			return nil, err
		}
		tab.AddRow(g.NumNodes(), g.NumEdges(), loadTime,
			loadTime.Nanoseconds()/g.NumNodes())
	}
	return tab, nil
}

// scaleForNodes converts a node budget to the nearest R-MAT scale exponent.
func scaleForNodes(n int64) int {
	s := 0
	for (int64(1) << s) < n {
		s++
	}
	if s < 6 {
		s = 6
	}
	if s > 30 {
		s = 30
	}
	return s
}
