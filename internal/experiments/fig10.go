package experiments

import (
	"fmt"
	"time"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/rmat"
	"stwig/internal/stats"
)

// The synthetic experiments follow §6.3's parameterization: node count,
// average degree, and *label density* — the ratio of distinct labels to
// nodes ("Higher label ratio, fewer matched nodes for a given label"). The
// paper's defaults are 64M nodes, degree 64, label density 1e-4. Keeping
// label density fixed while sweeping node count keeps the per-label
// frequency constant, which is why the paper's Figure 10(a) is flat.
const defaultLabelDensity = 4e-3

// labelsForDensity converts a density into a label-alphabet size.
func labelsForDensity(nodes int64, density float64) int {
	l := int(density * float64(nodes))
	if l < 2 {
		l = 2
	}
	return l
}

// rmatCluster generates an R-MAT graph and loads it.
func rmatCluster(cfg Config, scale, degree, numLabels int) (*graph.Graph, *core.Engine, error) {
	g, err := rmat.Generate(rmat.Params{
		Scale: scale, AvgDegree: degree, NumLabels: numLabels, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	cluster, _, err := loadCluster(g, cfg.Machines)
	if err != nil {
		return nil, nil, err
	}
	return g, core.NewEngine(cluster, core.Options{MatchBudget: cfg.Budget, Seed: cfg.Seed}), nil
}

// measureBoth runs a DFS and a random query set and returns both averages,
// matching the two series in every Figure 10 plot.
func measureBoth(cfg Config, g *graph.Graph, eng *core.Engine) (dfs, random time.Duration, err error) {
	dq, err := dfsQuerySet(g, 8, cfg)
	if err != nil {
		return 0, 0, err
	}
	rq, err := randomQuerySet(g, 10, 20, cfg)
	if err != nil {
		return 0, 0, err
	}
	dfs, _, err = avgQueryTime(eng, dq)
	if err != nil {
		return 0, 0, err
	}
	random, _, err = avgQueryTime(eng, rq)
	if err != nil {
		return 0, 0, err
	}
	return dfs, random, nil
}

// RunFig10a reproduces Figure 10(a): run time vs graph size at fixed
// average degree 16 and fixed label density. Paper shape: roughly flat —
// "query time is not sensitive to total node count" because cost tracks
// STwig count and size (per-label frequency stays constant when label
// density is fixed), not n.
func RunFig10a(cfg Config) (*stats.Table, error) {
	tab := stats.NewTable("nodes", "labels", "dfs_avg", "random_avg")
	base := scaleForNodes(cfg.scaled(1 << 13))
	for _, s := range []int{base, base + 1, base + 2, base + 3, base + 4} {
		nodes := int64(1) << s
		g, eng, err := rmatCluster(cfg, s, 16, labelsForDensity(nodes, defaultLabelDensity))
		if err != nil {
			return nil, err
		}
		dfs, random, err := measureBoth(cfg, g, eng)
		if err != nil {
			return nil, err
		}
		tab.AddRow(g.NumNodes(), g.Labels().Len(), dfs, random)
	}
	return tab, nil
}

// RunFig10b reproduces Figure 10(b): run time vs node count at fixed graph
// density, so the average degree grows with n. Paper shape: increasing —
// "larger node degree means larger STwig number and STwig size".
func RunFig10b(cfg Config) (*stats.Table, error) {
	tab := stats.NewTable("nodes", "avg_degree", "dfs_avg", "random_avg")
	base := scaleForNodes(cfg.scaled(1 << 12))
	degree := 4
	for i, s := range []int{base, base + 1, base + 2, base + 3} {
		nodes := int64(1) << s
		g, eng, err := rmatCluster(cfg, s, degree<<i, labelsForDensity(nodes, defaultLabelDensity))
		if err != nil {
			return nil, err
		}
		dfs, random, err := measureBoth(cfg, g, eng)
		if err != nil {
			return nil, err
		}
		tab.AddRow(g.NumNodes(), g.AvgDegree(), dfs, random)
	}
	return tab, nil
}

// RunFig10c reproduces Figure 10(c): run time vs average degree at fixed
// node count. Paper shape: sub-linear growth; random queries are affected
// more than DFS queries because denser graphs inflate their intermediate
// results.
func RunFig10c(cfg Config) (*stats.Table, error) {
	tab := stats.NewTable("avg_degree", "dfs_avg", "random_avg")
	s := scaleForNodes(cfg.scaled(1 << 14))
	nodes := int64(1) << s
	numLabels := labelsForDensity(nodes, defaultLabelDensity)
	for _, degree := range []int{8, 16, 24, 32, 48, 64} {
		g, eng, err := rmatCluster(cfg, s, degree, numLabels)
		if err != nil {
			return nil, err
		}
		dfs, random, err := measureBoth(cfg, g, eng)
		if err != nil {
			return nil, err
		}
		tab.AddRow(g.AvgDegree(), dfs, random)
	}
	return tab, nil
}

// RunFig10d reproduces Figure 10(d): run time vs label density. Paper
// shape: decreasing — a denser label alphabet means each label matches
// fewer vertices, shrinking every candidate set.
//
// The random-query series uses N=8, E=12 instead of the default N=10,
// E=20: at simulator scale the lowest density leaves only a handful of
// labels, and a 20-edge random query there spends minutes failing its
// cycle constraints — the trend is identical with the lighter query.
func RunFig10d(cfg Config) (*stats.Table, error) {
	tab := stats.NewTable("label_density", "num_labels", "dfs_avg", "random_avg")
	s := scaleForNodes(cfg.scaled(1 << 13))
	nodes := int64(1) << s
	for _, density := range []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1} {
		numLabels := labelsForDensity(nodes, density)
		g, eng, err := rmatCluster(cfg, s, 16, numLabels)
		if err != nil {
			return nil, err
		}
		dq, err := dfsQuerySet(g, 8, cfg)
		if err != nil {
			return nil, err
		}
		rq, err := randomQuerySet(g, 8, 12, cfg)
		if err != nil {
			return nil, err
		}
		dfs, _, err := avgQueryTime(eng, dq)
		if err != nil {
			return nil, err
		}
		random, _, err := avgQueryTime(eng, rq)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%.0e", density), numLabels, dfs, random)
	}
	return tab, nil
}
