package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig shrinks everything so the whole suite runs in seconds.
func tinyConfig() Config {
	return Config{Scale: 0.05, Machines: 3, QueriesPerPoint: 3, Budget: 64, Seed: 7}
}

func renderOK(t *testing.T, name string) string {
	t.Helper()
	exp, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := exp.Run(tinyConfig())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("%s produced fewer than 1 data row:\n%s", name, out)
	}
	return out
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			renderOK(t, e.Name)
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryCoversEveryExhibit(t *testing.T) {
	// One entry per paper exhibit: 2 tables + 9 figures + ablations +
	// the §8 throughput extension.
	want := []string{"table1", "table2", "fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig10a", "fig10b", "fig10c", "fig10d", "ablations", "throughput"}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.Name] = true
		if e.Paper == "" || e.Shape == "" || e.Run == nil {
			t.Fatalf("experiment %q underspecified", e.Name)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("missing experiment %q", w)
		}
	}
	if len(have) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(have), len(want))
	}
}

func TestScaledFloor(t *testing.T) {
	cfg := Config{Scale: 0.000001}
	if got := cfg.scaled(1000); got != 64 {
		t.Fatalf("scaled floor = %d, want 64", got)
	}
}

func TestScaleForNodes(t *testing.T) {
	if scaleForNodes(1024) != 10 {
		t.Fatalf("scaleForNodes(1024) = %d", scaleForNodes(1024))
	}
	if scaleForNodes(1) != 6 {
		t.Fatal("minimum scale not enforced")
	}
	if scaleForNodes(1<<40) != 30 {
		t.Fatal("maximum scale not enforced")
	}
}
