package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/memcloud"
	"stwig/internal/stats"
	"stwig/internal/workload"
)

// RunAblations measures the design choices DESIGN.md §6 calls out, each
// against the full configuration on the same graph and query set:
//
//	bindings off      — §3's "join everything" strategy
//	load sets off     — all-to-all result exchange
//	random cover      — unrevised decomposition instead of Algorithm 2
//	join order off    — fixed relation order
//
// Reported per variant: average query time and network bytes. Result sets
// are identical across variants (asserted by the core test suite), so the
// differences isolate cost.
func RunAblations(cfg Config) (*stats.Table, error) {
	g, err := workload.SynthPatents(workload.PatentsParams{
		Nodes: cfg.scaled(30_000), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	dfs, err := dfsQuerySet(g, 7, cfg)
	if err != nil {
		return nil, err
	}
	rnd, err := randomQuerySet(g, 8, 14, cfg)
	if err != nil {
		return nil, err
	}
	queries := append(append([]*core.Query(nil), dfs...), rnd...)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full (paper)", core.Options{}},
		{"no bindings", core.Options{NoBindings: true}},
		{"no load sets", core.Options{NoLoadSets: true}},
		{"random decomposition", core.Options{RandomDecomposition: true}},
		{"no join order opt", core.Options{NoJoinOrderOpt: true}},
	}
	tab := stats.NewTable("variant", "avg_query_time", "net_bytes", "net_messages")
	for _, v := range variants {
		cluster, err := memcloud.NewCluster(memcloud.Config{Machines: cfg.Machines})
		if err != nil {
			return nil, err
		}
		if err := cluster.LoadGraph(g); err != nil {
			return nil, err
		}
		opts := v.opts
		opts.MatchBudget = cfg.Budget
		opts.Seed = cfg.Seed
		eng := core.NewEngine(cluster, opts)
		cluster.ResetNetStats()
		var total time.Duration
		for _, q := range queries {
			start := time.Now()
			if _, err := eng.Match(q); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		net := cluster.NetStats()
		tab.AddRow(v.name, total/time.Duration(len(queries)), net.Bytes, net.Messages)
	}

	// Load-set pruning only bites when the cluster graph is not complete.
	// Under hash partitioning every label pair spans every machine pair,
	// so D_C ≡ 1 and Theorem 4 admits everyone — an honest negative (the
	// paper's own experiments randomly partition and lean on the head
	// STwig for disjointness, not savings). A locality-preserving range
	// partition over a community-structured graph is where §5.3's bound
	// shows; measure it separately.
	locTab, err := runLocalityLoadSets(cfg)
	if err != nil {
		return nil, err
	}
	for _, row := range locTab {
		tab.AddRow(row...)
	}
	return tab, nil
}

// runLocalityLoadSets compares load-set exchange vs all-to-all on a
// range-partitioned ring-of-communities graph, returning extra rows.
func runLocalityLoadSets(cfg Config) ([][]interface{}, error) {
	g := communityRing(cfg.scaled(20_000), 64, cfg.Seed)
	// A 4-vertex path decomposes into two STwigs with adjacent roots
	// (d(r_head, r_t) = 1), so machine k only needs results from machines
	// within cluster-graph distance 1 — on a ring partition, 2 of the k-1
	// remote machines. A 3-vertex path would decompose into a single STwig
	// and exchange nothing.
	q, err := core.NewQuery(
		[]string{"c0", "c1", "c2", "c3"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}},
	)
	if err != nil {
		return nil, err
	}
	queries := []*core.Query{q}
	var rows [][]interface{}
	for _, v := range []struct {
		name string
		part memcloud.Partitioner
		opts core.Options
	}{
		{"locality(range) + load sets", memcloud.RangePartitioner{K: cfg.Machines, N: g.NumNodes()}, core.Options{}},
		{"locality(range) + all-to-all", memcloud.RangePartitioner{K: cfg.Machines, N: g.NumNodes()}, core.Options{NoLoadSets: true}},
		{"locality(bfs) + load sets", memcloud.NewBFSPartitioner(g, cfg.Machines), core.Options{}},
		{"hash + load sets", nil, core.Options{}},
	} {
		cluster, err := memcloud.NewCluster(memcloud.Config{
			Machines:    cfg.Machines,
			Partitioner: v.part,
		})
		if err != nil {
			return nil, err
		}
		if err := cluster.LoadGraph(g); err != nil {
			return nil, err
		}
		opts := v.opts
		opts.MatchBudget = cfg.Budget
		opts.Seed = cfg.Seed
		eng := core.NewEngine(cluster, opts)
		cluster.ResetNetStats()
		var total time.Duration
		for _, q := range queries {
			start := time.Now()
			if _, err := eng.Match(q); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		net := cluster.NetStats()
		rows = append(rows, []interface{}{v.name, total / time.Duration(len(queries)), net.Bytes, net.Messages})
	}
	return rows, nil
}

// communityRing builds a graph of ID-contiguous communities arranged in a
// ring: community i links only to communities i±1, and each community has
// its own label alphabet ("c<j>" cycling over 8 classes). Range-partitioned
// over k machines, the cluster graph becomes a ring instead of a clique.
func communityRing(nodes int64, communitySize int64, seed int64) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	rng := rand.New(rand.NewSource(seed))
	numComms := nodes / communitySize
	if numComms < 2 {
		numComms = 2
	}
	total := numComms * communitySize
	for v := int64(0); v < total; v++ {
		b.AddNode(fmt.Sprintf("c%d", v%8))
	}
	for c := int64(0); c < numComms; c++ {
		base := c * communitySize
		// Dense-ish intra-community wiring.
		for i := int64(0); i < communitySize*3; i++ {
			u := base + rng.Int63n(communitySize)
			v := base + rng.Int63n(communitySize)
			if u != v {
				b.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		// A couple of bridges to the next community around the ring.
		next := ((c + 1) % numComms) * communitySize
		for i := 0; i < 2; i++ {
			b.MustAddEdge(
				graph.NodeID(base+rng.Int63n(communitySize)),
				graph.NodeID(next+rng.Int63n(communitySize)),
			)
		}
	}
	return b.Build()
}
