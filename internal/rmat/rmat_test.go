package rmat

import (
	"sort"
	"testing"
	"testing/quick"

	"stwig/internal/graph"
)

func TestGenerateBasic(t *testing.T) {
	g, err := Generate(Params{Scale: 10, AvgDegree: 8, NumLabels: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1024 {
		t.Fatalf("NumNodes = %d, want 1024", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Dedupe and self-loop skips shave some edges; expect at least half the
	// nominal count and no more than the nominal count.
	nominal := int64(1024 * 8)
	if g.NumEdges() < nominal/2 || g.NumEdges() > nominal {
		t.Fatalf("NumEdges = %d, outside [%d,%d]", g.NumEdges(), nominal/2, nominal)
	}
	if got := g.Labels().Len(); got != 4 {
		t.Fatalf("label count = %d, want 4", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Scale: 8, AvgDegree: 6, NumLabels: 3, Seed: 42}
	g1 := MustGenerate(p)
	g2 := MustGenerate(p)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different sizes")
	}
	for v := int64(0); v < g1.NumNodes(); v++ {
		n1, n2 := g1.Neighbors(graph.NodeID(v)), g2.Neighbors(graph.NodeID(v))
		if len(n1) != len(n2) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	g1 := MustGenerate(Params{Scale: 8, AvgDegree: 6, Seed: 1})
	g2 := MustGenerate(Params{Scale: 8, AvgDegree: 6, Seed: 2})
	same := true
	for v := int64(0); v < g1.NumNodes() && same; v++ {
		n1, n2 := g1.Neighbors(graph.NodeID(v)), g2.Neighbors(graph.NodeID(v))
		if len(n1) != len(n2) {
			same = false
			break
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				same = false
				break
			}
		}
	}
	if same && g1.NumEdges() == g2.NumEdges() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// The point of R-MAT: heavy-tailed degrees. Check the max degree is far
	// above the mean, which an Erdos-Renyi graph of this size would not be.
	g := MustGenerate(Params{Scale: 12, AvgDegree: 8, NumLabels: 2, Seed: 7})
	avg := g.AvgDegree()
	max := g.MaxDegree()
	if float64(max) < 5*avg {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", max, avg)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []Params{
		{Scale: 0},
		{Scale: 41},
		{Scale: 4, AvgDegree: -1},
		{Scale: 4, NumLabels: -2},
		{Scale: 4, A: 0.5, B: 0.5, C: 0.2},
		{Scale: 4, A: -0.1, B: 0.2, C: 0.2},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted bad params", i, p)
		}
	}
}

func TestNoiseStillValid(t *testing.T) {
	g := MustGenerate(Params{Scale: 9, AvgDegree: 8, NumLabels: 4, Seed: 3, Noise: 0.05})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelDistributionRoughlyUniform(t *testing.T) {
	g := MustGenerate(Params{Scale: 12, AvgDegree: 4, NumLabels: 8, Seed: 11})
	freq := g.LabelFrequencies()
	n := g.NumNodes()
	for id, f := range freq {
		share := float64(f) / float64(n)
		if share < 0.05 || share > 0.25 { // expected 0.125
			t.Fatalf("label %d share %.3f far from uniform", id, share)
		}
	}
}

func TestPropertyGeneratedGraphsValid(t *testing.T) {
	f := func(seed int64) bool {
		p := Params{Scale: 6 + int(uint64(seed)%4), AvgDegree: 2 + int(uint64(seed)%6), NumLabels: 1 + int(uint64(seed)%5), Seed: seed}
		g, err := Generate(p)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelName(t *testing.T) {
	names := []string{LabelName(0), LabelName(1), LabelName(10)}
	sort.Strings(names)
	if names[0] != "L0" {
		t.Fatalf("LabelName(0) = %q", LabelName(0))
	}
}
