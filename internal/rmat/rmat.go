// Package rmat generates synthetic power-law graphs with the R-MAT recursive
// model of Chakrabarti, Zhan and Faloutsos (SDM 2004), the generator the
// paper uses for all synthetic-data experiments (§6.3).
//
// An R-MAT edge is placed by recursively descending a 2^scale x 2^scale
// adjacency matrix, choosing one of four quadrants at each level with
// probabilities (A, B, C, D). The skewed defaults produce the heavy-tailed
// degree distributions of real web and social graphs.
package rmat

import (
	"fmt"
	"math/rand"

	"stwig/internal/graph"
)

// Params configures a generation run.
type Params struct {
	// Scale is log2 of the number of vertices; NumNodes = 1 << Scale.
	Scale int
	// AvgDegree is the target mean degree; EdgeFactor edges are generated
	// per vertex. (The paper sweeps average degree in Figure 10(c).)
	AvgDegree int
	// A, B, C are the quadrant probabilities; D = 1-A-B-C. Zero values
	// select the conventional (0.57, 0.19, 0.19, 0.05).
	A, B, C float64
	// NumLabels is the size of the label alphabet. Labels are assigned
	// uniformly at random; the paper's "label density" is
	// 1/NumLabels of the vertex count matching each label on average
	// (Figure 10(d) sweeps it from 1e-5 to 1e-1).
	NumLabels int
	// Seed makes generation deterministic.
	Seed int64
	// Noise perturbs quadrant probabilities per recursion level, the
	// standard "smoothing" that avoids staircase artifacts. Zero disables.
	Noise float64
}

func (p Params) withDefaults() Params {
	if p.A == 0 && p.B == 0 && p.C == 0 {
		p.A, p.B, p.C = 0.57, 0.19, 0.19
	}
	if p.AvgDegree == 0 {
		p.AvgDegree = 8
	}
	if p.NumLabels == 0 {
		p.NumLabels = 16
	}
	return p
}

// Validate rejects parameter combinations that would generate nonsense.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.Scale < 1 || p.Scale > 40 {
		return fmt.Errorf("rmat: scale %d out of range [1,40]", p.Scale)
	}
	if p.AvgDegree < 1 {
		return fmt.Errorf("rmat: average degree %d < 1", p.AvgDegree)
	}
	if p.NumLabels < 1 {
		return fmt.Errorf("rmat: label count %d < 1", p.NumLabels)
	}
	if p.A < 0 || p.B < 0 || p.C < 0 || p.A+p.B+p.C >= 1 {
		return fmt.Errorf("rmat: quadrant probabilities (%v,%v,%v) invalid", p.A, p.B, p.C)
	}
	return nil
}

// Generate builds an undirected labeled R-MAT graph.
func Generate(p Params) (*graph.Graph, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int64(1) << p.Scale
	m := n * int64(p.AvgDegree) / 2 // undirected edges; stored twice

	b := graph.NewBuilder(graph.Undirected(), graph.Dedupe())
	labelIDs := make([]graph.LabelID, p.NumLabels)
	for i := range labelIDs {
		labelIDs[i] = b.Labels().Intern(LabelName(i))
	}
	b.AddNodes(n, func(int64) graph.LabelID {
		return labelIDs[rng.Intn(p.NumLabels)]
	})

	for i := int64(0); i < m; i++ {
		u, v := pickEdge(rng, p)
		if u == v {
			continue
		}
		b.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build(), nil
}

// MustGenerate is Generate that panics on error; for benchmarks whose
// parameters are static.
func MustGenerate(p Params) *graph.Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

// pickEdge descends the recursive quadrants once.
func pickEdge(rng *rand.Rand, p Params) (int64, int64) {
	var u, v int64
	a, bb, c := p.A, p.B, p.C
	for depth := 0; depth < p.Scale; depth++ {
		ca, cb, cc := a, bb, c
		if p.Noise > 0 {
			ca = clampProb(a + (rng.Float64()*2-1)*p.Noise)
			cb = clampProb(bb + (rng.Float64()*2-1)*p.Noise)
			cc = clampProb(c + (rng.Float64()*2-1)*p.Noise)
			sum := ca + cb + cc
			if sum >= 1 {
				scale := 0.99 / sum
				ca, cb, cc = ca*scale, cb*scale, cc*scale
			}
		}
		r := rng.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < ca:
			// top-left quadrant: no bits set
		case r < ca+cb:
			v |= 1
		case r < ca+cb+cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

func clampProb(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 0.98 {
		return 0.98
	}
	return x
}

// LabelName returns the canonical label string for label index i ("L0",
// "L1", ...). Centralized so generators, workloads and tools agree.
func LabelName(i int) string { return fmt.Sprintf("L%d", i) }
