// Package pattern provides a compact Cypher-like syntax for subgraph
// queries, compiling to core.Query. The paper positions general subgraph
// matching against SPARQL's restricted edge patterns (§1.1); this package
// is the corresponding ergonomic front end.
//
// Syntax:
//
//	(a:author)-(p:paper), (p)-(v:venue), (a)-(v)
//
// A pattern is a comma-separated list of chains; a chain is a sequence of
// parenthesized vertices joined by '-', each adjacent pair contributing one
// undirected edge. A vertex is written (name:label); the label may be
// omitted on repeat mentions. Whitespace is insignificant. An optional
// leading "MATCH" keyword is accepted.
package pattern

import (
	"fmt"
	"strings"
	"unicode"

	"stwig/internal/core"
)

// Parse compiles a pattern into a query. Every variable must carry a label
// on at least one mention, labels must not conflict, and the resulting
// graph must be connected with at least one edge (the engine's
// requirements).
func Parse(input string) (*core.Query, error) {
	p := &parser{src: input}
	p.skipSpace()
	// Optional MATCH keyword.
	if rest, ok := p.keyword("MATCH"); ok {
		p.pos = rest
	}
	type vertex struct {
		name  string
		label string
		index int
	}
	vars := map[string]*vertex{}
	var order []*vertex
	var edges [][2]int

	lookup := func(name, label string) (*vertex, error) {
		v := vars[name]
		if v == nil {
			v = &vertex{name: name, label: label, index: len(order)}
			vars[name] = v
			order = append(order, v)
			return v, nil
		}
		if label != "" {
			if v.label != "" && v.label != label {
				return nil, fmt.Errorf("pattern: variable %q relabeled %q -> %q", name, v.label, label)
			}
			v.label = label
		}
		return v, nil
	}

	for {
		// One chain.
		prev := -1
		for {
			name, label, err := p.node()
			if err != nil {
				return nil, err
			}
			v, err := lookup(name, label)
			if err != nil {
				return nil, err
			}
			if prev >= 0 {
				edges = append(edges, [2]int{prev, v.index})
			}
			prev = v.index
			p.skipSpace()
			if !p.consume('-') {
				break
			}
			p.skipSpace()
		}
		p.skipSpace()
		if !p.consume(',') {
			break
		}
		p.skipSpace()
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pattern: unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}

	labels := make([]string, len(order))
	for i, v := range order {
		if v.label == "" {
			return nil, fmt.Errorf("pattern: variable %q has no label on any mention", v.name)
		}
		labels[i] = v.label
	}
	q, err := core.NewQuery(labels, edges)
	if err != nil {
		return nil, err
	}
	if q.NumEdges() == 0 {
		return nil, fmt.Errorf("pattern: query has no edges")
	}
	if !q.Connected() {
		return nil, fmt.Errorf("pattern: query graph is not connected")
	}
	return q, nil
}

// MustParse is Parse that panics on error; for examples and tests.
func MustParse(input string) *core.Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// Format renders q back into pattern syntax with generated variable names
// v0, v1, .... Vertices are listed first in index order (as single-node
// chains), so parsing the output reproduces q's exact vertex numbering.
func Format(q *core.Query) string {
	parts := make([]string, 0, q.NumVertices()+q.NumEdges())
	for v := 0; v < q.NumVertices(); v++ {
		parts = append(parts, fmt.Sprintf("(v%d:%s)", v, q.Label(v)))
	}
	for _, e := range q.Edges() {
		parts = append(parts, fmt.Sprintf("(v%d)-(v%d)", e[0], e[1]))
	}
	return strings.Join(parts, ", ")
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// keyword matches an uppercase-insensitive keyword followed by whitespace.
func (p *parser) keyword(kw string) (after int, ok bool) {
	end := p.pos + len(kw)
	if end >= len(p.src) {
		return 0, false
	}
	if !strings.EqualFold(p.src[p.pos:end], kw) {
		return 0, false
	}
	if !unicode.IsSpace(rune(p.src[end])) {
		return 0, false
	}
	return end + 1, true
}

func (p *parser) consume(c byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// node parses "(name)" or "(name:label)".
func (p *parser) node() (name, label string, err error) {
	if !p.consume('(') {
		return "", "", fmt.Errorf("pattern: expected '(' at offset %d", p.pos)
	}
	p.skipSpace()
	name = p.ident()
	if name == "" {
		return "", "", fmt.Errorf("pattern: expected variable name at offset %d", p.pos)
	}
	p.skipSpace()
	if p.consume(':') {
		p.skipSpace()
		label = p.ident()
		if label == "" {
			return "", "", fmt.Errorf("pattern: expected label after ':' at offset %d", p.pos)
		}
		p.skipSpace()
	}
	if !p.consume(')') {
		return "", "", fmt.Errorf("pattern: expected ')' at offset %d", p.pos)
	}
	return name, label, nil
}

// ident scans an identifier: letters, digits, '_', '.', '-' are allowed
// except that '-' is the edge separator and so excluded here.
func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}
