package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"stwig/internal/core"
	"stwig/internal/graph"
	"stwig/internal/memcloud"
)

func TestParseSimpleChain(t *testing.T) {
	q, err := Parse("(a:author)-(p:paper)-(v:venue)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 2 {
		t.Fatalf("size = (%d,%d)", q.NumVertices(), q.NumEdges())
	}
	if q.Label(0) != "author" || q.Label(1) != "paper" || q.Label(2) != "venue" {
		t.Fatalf("labels = %v", q.Labels())
	}
	if !q.HasEdge(0, 1) || !q.HasEdge(1, 2) || q.HasEdge(0, 2) {
		t.Fatal("edges wrong")
	}
}

func TestParseMultipleChainsAndReuse(t *testing.T) {
	q, err := Parse("(a:x)-(b:y), (b)-(c:z), (a)-(c)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 {
		t.Fatalf("size = (%d,%d)", q.NumVertices(), q.NumEdges())
	}
	// Triangle.
	if !q.HasEdge(0, 1) || !q.HasEdge(1, 2) || !q.HasEdge(0, 2) {
		t.Fatal("triangle edges missing")
	}
}

func TestParseMatchKeywordAndWhitespace(t *testing.T) {
	q, err := Parse("  MATCH ( a : x ) - ( b : y ) ")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumEdges() != 1 {
		t.Fatal("keyword form failed")
	}
	// Case-insensitive keyword.
	if _, err := Parse("match (a:x)-(b:y)"); err != nil {
		t.Fatal(err)
	}
	// A variable legitimately named "matchstick" must not be eaten by the
	// keyword rule (no following space).
	if _, err := Parse("(match:x)-(b:y)"); err != nil {
		t.Fatalf("variable named 'match' rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no label anywhere", "(a)-(b:x)"},
		{"label conflict", "(a:x)-(b:y), (a:z)-(b)"},
		{"unclosed paren", "(a:x-(b:y)"},
		{"missing paren", "a:x-(b:y)"},
		{"trailing junk", "(a:x)-(b:y) xyz"},
		{"no edges", "(a:x)"},
		{"disconnected", "(a:x)-(b:y), (c:z)-(d:w)"},
		{"self loop", "(a:x)-(a)"},
		{"duplicate edge", "(a:x)-(b:y), (b)-(a)"},
		{"empty label", "(a:)-(b:y)"},
		{"empty name", "(:x)-(b:y)"},
		{"dangling dash", "(a:x)-"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.in); err == nil {
				t.Fatalf("Parse(%q) succeeded", c.in)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("(((")
}

func TestFormatRoundTrip(t *testing.T) {
	q := MustParse("(a:x)-(b:y)-(c:x), (a)-(c)")
	s := Format(q)
	if !strings.Contains(s, ":x") || !strings.Contains(s, ":y") {
		t.Fatalf("Format = %q", s)
	}
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("Format output does not re-parse: %v\n%s", err, s)
	}
	if q2.NumVertices() != q.NumVertices() || q2.NumEdges() != q.NumEdges() {
		t.Fatal("round trip changed query size")
	}
}

func TestParsedQueryExecutes(t *testing.T) {
	// End to end: pattern → engine matches on the paper's Figure 1 graph.
	g := graph.MustFromEdges(
		[]string{"a", "a", "b", "c", "d"},
		[][2]int64{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}},
		graph.Undirected(),
	)
	c := memcloud.MustNewCluster(memcloud.Config{Machines: 2})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q := MustParse("(x:a)-(y:b), (x)-(z:c), (y)-(w:d), (z)-(w)")
	res, err := core.NewEngine(c, core.Options{}).Match(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(res.Matches))
	}
}

func TestPropertyFormatParseRoundTrip(t *testing.T) {
	// Any connected random query formats to a string that parses back to
	// an isomorphic query (same size, labels, and edge multiset).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = []string{"alpha", "beta", "gamma"}[rng.Intn(3)]
		}
		var edges [][2]int
		seen := map[[2]int]bool{}
		perm := rng.Perm(n)
		add := func(u, v int) {
			if u == v {
				return
			}
			k := [2]int{min(u, v), max(u, v)}
			if !seen[k] {
				seen[k] = true
				edges = append(edges, [2]int{u, v})
			}
		}
		for i := 1; i < n; i++ {
			add(perm[i], perm[rng.Intn(i)])
		}
		for i := 0; i < n; i++ {
			add(rng.Intn(n), rng.Intn(n))
		}
		q, err := core.NewQuery(labels, edges)
		if err != nil {
			return false
		}
		q2, err := Parse(Format(q))
		if err != nil {
			return false
		}
		if q2.NumVertices() != q.NumVertices() || q2.NumEdges() != q.NumEdges() {
			return false
		}
		for v := 0; v < q.NumVertices(); v++ {
			if q2.Label(v) != q.Label(v) {
				return false
			}
		}
		for _, e := range q.Edges() {
			if !q2.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
