package pattern

import (
	"testing"

	"stwig/internal/core"
)

// FuzzParse hardens the inline pattern DSL against arbitrary network input:
// stwigd's /query endpoint hands request strings straight to Parse, so no
// input may panic, and anything accepted must satisfy the engine's query
// invariants and round-trip through Format with a stable plan-cache
// signature.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(a:author)-(p:paper), (p)-(v:venue), (a)-(v)",
		"MATCH (a:x)-(b:y)",
		"(a:x)-(b:y)-(c:z)",
		"(a)-(b)",
		"(a:x)",
		"(a:x)-(a)",
		"((",
		"(a:x)-(b:y), (c:z)-(d:w)",
		"(a : x) - (b : y)",
		"(a:x)-(b:y),",
		"(é:café)-(b:y)",
		"(a:x)-(b:y) trailing",
		"",
		"MATCH",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		// Parse enforces the engine's requirements on anything it accepts.
		if err := core.ValidateQuery(q); err != nil {
			t.Fatalf("accepted pattern violates engine invariants: %v (input %q)", err, input)
		}
		// Format output re-parses to the same canonical signature, so a
		// formatted pattern hits the same plan-cache entry.
		q2, err := Parse(Format(q))
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%s", err, Format(q))
		}
		if q.Signature() != q2.Signature() {
			t.Fatalf("Format round trip changed signature:\n  %q\n  %q", q.Signature(), q2.Signature())
		}
	})
}
