module stwig

go 1.24
