module stwig

go 1.23
